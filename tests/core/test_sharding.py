"""Unit tests for the canonical shard plans behind intra-trial sharding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.population import CreditPopulation, IFSPopulation
from repro.core.sharding import (
    NUM_CANONICAL_SHARDS,
    PopulationShard,
    ShardPlan,
    shard_population,
)
from repro.data.synthetic import PopulationSpec, generate_population
from repro.markov.ifs import SignalDependentIFS
from repro.markov.maps import AffineMap
from repro.utils.rng import derive_seed, shard_seed, shard_step_generator


class TestShardPlan:
    def test_canonical_caps_at_population_size(self):
        assert ShardPlan.canonical(3).num_shards == 3
        assert ShardPlan.canonical(1000).num_shards == NUM_CANONICAL_SHARDS

    def test_canonical_is_contiguous_and_covering(self):
        plan = ShardPlan.canonical(1003)
        assert plan.bounds[0][0] == 0
        assert plan.bounds[-1][1] == 1003
        for (_, hi), (lo, _) in zip(plan.bounds, plan.bounds[1:]):
            assert hi == lo
        assert sum(plan.sizes) == 1003

    def test_canonical_matches_array_split_sizing(self):
        plan = ShardPlan.canonical(1003)
        expected = [len(chunk) for chunk in np.array_split(np.arange(1003), 8)]
        assert list(plan.sizes) == expected

    def test_single_plan(self):
        plan = ShardPlan.single(17)
        assert plan.bounds == ((0, 17),)

    def test_validation_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ShardPlan(num_users=10, bounds=((0, 5), (6, 10)))  # gap
        with pytest.raises(ValueError):
            ShardPlan(num_users=10, bounds=((0, 5), (5, 9)))  # short
        with pytest.raises(ValueError):
            ShardPlan(num_users=10, bounds=((0, 5), (5, 5), (5, 10)))  # empty
        with pytest.raises(ValueError):
            ShardPlan(num_users=0, bounds=())

    def test_worker_ranges_cover_all_shards(self):
        plan = ShardPlan.canonical(100)
        for workers in (1, 2, 3, 8, 20):
            ranges = plan.worker_ranges(workers)
            assert len(ranges) == min(workers, plan.num_shards)
            assert ranges[0][0] == 0
            assert ranges[-1][1] == plan.num_shards
            for (_, stop), (start, _) in zip(ranges, ranges[1:]):
                assert stop == start

    def test_localized_rebases_bounds(self):
        plan = ShardPlan.canonical(100)
        local = plan.localized(2, 5)
        assert local.bounds[0][0] == 0
        assert local.num_users == plan.user_range(2, 5)[1] - plan.user_range(2, 5)[0]
        assert local.num_shards == 3

    def test_slices_match_bounds(self):
        plan = ShardPlan.canonical(30)
        joined = np.concatenate([np.arange(30)[s] for s in plan.slices()])
        assert np.array_equal(joined, np.arange(30))


class TestShardStreams:
    def test_shard_seed_matches_derive_seed_labels(self):
        assert shard_seed(123, 4) == derive_seed(123, "shard", 4)

    def test_step_generators_are_stateless_and_reproducible(self):
        a = shard_step_generator(9, 2, 7).random(5)
        b = shard_step_generator(9, 2, 7).random(5)
        assert np.array_equal(a, b)
        c = shard_step_generator(9, 2, 8).random(5)
        assert not np.array_equal(a, c)


class TestShardPopulationHelper:
    def _population(self, size=100):
        return CreditPopulation(
            population=generate_population(
                PopulationSpec(size=size), np.random.default_rng(0)
            )
        )

    def test_shards_cover_the_population(self):
        population = self._population()
        shards = shard_population(population, 3)
        assert all(isinstance(shard, PopulationShard) for shard in shards)
        assert shards[0].lo == 0
        assert shards[-1].hi == population.num_users
        covered = sorted(
            shard_id for shard in shards for shard_id in shard.shard_ids
        )
        assert covered == list(range(population.shard_plan.num_shards))

    def test_credit_shard_slice_replays_parent_draws(self):
        population = self._population()
        plan = population.shard_plan
        rngs = [shard_step_generator(5, s, 0) for s in range(plan.num_shards)]
        full = population.begin_step(0, rngs)["income"]
        shard = shard_population(population, 4)[1]
        worker_rngs = [
            shard_step_generator(5, s, 0) for s in shard.shard_ids
        ]
        piece = shard.population.begin_step(0, worker_rngs)["income"]
        assert np.array_equal(full[shard.lo : shard.hi], piece)

    def test_shard_slice_rejects_unaligned_ranges(self):
        population = self._population()
        with pytest.raises(ValueError):
            population.shard_slice(1, population.num_users)

    def test_ifs_shard_slice_replays_parent_draws(self):
        shared = SignalDependentIFS(
            transition_maps=(AffineMap.scalar(0.5, 0.0), AffineMap.scalar(0.5, 0.5)),
            transition_probabilities=lambda s: [0.8, 0.2] if s > 0.5 else [0.3, 0.7],
            output_maps=(AffineMap.scalar(1.0, 0.0), AffineMap.scalar(0.0, 1.0)),
            output_probabilities=lambda s: [0.6, 0.4] if s > 0.5 else [0.1, 0.9],
        )
        n = 64
        states = [np.array([0.01 * i]) for i in range(n)]
        decisions = (np.arange(n) % 2).astype(float)

        full = IFSPopulation(users=[shared] * n, initial_states=states)
        plan = full.shard_plan
        rngs = [shard_step_generator(3, s, 0) for s in range(plan.num_shards)]
        full_actions = full.respond(decisions, 0, rngs)

        lo, hi = plan.bounds[1][0], plan.bounds[3][1]
        worker = IFSPopulation(
            users=[shared] * n, initial_states=states
        ).shard_slice(lo, hi)
        worker_rngs = [shard_step_generator(3, s, 0) for s in (1, 2, 3)]
        worker_actions = worker.respond(decisions[lo:hi], 0, worker_rngs)
        assert np.array_equal(full_actions[lo:hi], worker_actions)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(full.states[lo:hi], worker.states)
        )
