"""Tests for repro.core.fairness (Definitions 1-4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fairness import equal_impact_assessment, equal_treatment_assessment
from repro.data.census import Race


class TestEqualTreatment:
    def test_uniform_signal_and_equal_responses_satisfy_definition_1(self):
        decisions = np.ones((10, 4))
        responses = np.tile(np.array([0.5, 0.5, 0.5, 0.5]), (10, 1))
        assessment = equal_treatment_assessment(decisions, responses)
        assert assessment.uniform_signal
        assert assessment.max_response_gap == pytest.approx(0.0)
        assert assessment.satisfied

    def test_non_uniform_signal_violates_definition_1(self):
        decisions = np.ones((5, 2))
        decisions[2, 1] = 0.0
        responses = np.ones((5, 2))
        assessment = equal_treatment_assessment(decisions, responses)
        assert not assessment.uniform_signal
        assert not assessment.satisfied
        assert assessment.per_step_signal_gap[2] == pytest.approx(1.0)

    def test_unequal_responses_violate_definition_1(self):
        decisions = np.ones((20, 2))
        responses = np.column_stack([np.ones(20), np.zeros(20)])
        assessment = equal_treatment_assessment(decisions, responses, tolerance=0.1)
        assert assessment.uniform_signal
        assert assessment.max_response_gap == pytest.approx(1.0)
        assert not assessment.satisfied

    def test_group_conditioning_compares_group_means(self):
        decisions = np.ones((10, 4))
        responses = np.column_stack(
            [np.ones(10), np.ones(10), np.zeros(10), np.zeros(10)]
        )
        groups = {Race.BLACK: np.array([0, 1]), Race.WHITE: np.array([2, 3])}
        assessment = equal_treatment_assessment(decisions, responses, groups=groups)
        assert assessment.max_response_gap == pytest.approx(1.0)
        assert set(assessment.mean_responses) == set(groups)

    def test_shape_mismatch_is_rejected(self):
        with pytest.raises(ValueError):
            equal_treatment_assessment(np.ones((3, 2)), np.ones((2, 2)))


class TestEqualImpact:
    def test_identical_users_satisfy_definition_3(self):
        rng = np.random.default_rng(0)
        outcomes = rng.binomial(1, 0.5, size=(400, 5)).astype(float)
        assessment = equal_impact_assessment(outcomes, tolerance=0.1)
        assert assessment.max_user_gap < 0.1
        assert assessment.satisfied

    def test_persistently_different_users_violate_definition_3(self):
        outcomes = np.column_stack([np.ones(100), np.zeros(100)])
        assessment = equal_impact_assessment(outcomes, tolerance=0.1)
        assert assessment.max_user_gap == pytest.approx(1.0)
        assert not assessment.satisfied

    def test_group_conditioning_uses_group_limits(self):
        outcomes = np.column_stack(
            [np.ones(100), np.ones(100), np.zeros(100), np.zeros(100)]
        )
        groups = {Race.BLACK: np.array([0, 1]), Race.WHITE: np.array([2, 3])}
        assessment = equal_impact_assessment(outcomes, groups=groups, tolerance=0.05)
        assert assessment.max_group_gap == pytest.approx(1.0)
        assert not assessment.satisfied
        assert assessment.group_limits[Race.BLACK] == pytest.approx(1.0)

    def test_group_with_no_members_reports_nan_limit(self):
        outcomes = np.ones((50, 2))
        groups = {Race.BLACK: np.array([0, 1]), Race.ASIAN: np.array([], dtype=int)}
        assessment = equal_impact_assessment(outcomes, groups=groups)
        assert np.isnan(assessment.group_limits[Race.ASIAN])
        assert assessment.satisfied

    def test_already_averaged_series_skips_the_cesaro_step(self):
        running = np.tile(np.array([[0.2, 0.2]]), (50, 1))
        assessment = equal_impact_assessment(running, already_averaged=True)
        np.testing.assert_allclose(assessment.user_limits, [0.2, 0.2])

    def test_converged_flag_tracks_tail_dispersion(self):
        settled = np.tile(np.array([[0.3, 0.3]]), (100, 1))
        assessment = equal_impact_assessment(settled, already_averaged=True, tolerance=0.01)
        assert assessment.converged
        oscillating = np.column_stack([np.tile([0.0, 1.0], 50), np.tile([0.0, 1.0], 50)])
        wild = equal_impact_assessment(oscillating, already_averaged=True, tolerance=0.01)
        assert not wild.converged

    def test_transient_differences_are_forgiven(self):
        # Both users converge to 0.5 but start very differently.
        steps = 4000
        user_a = np.concatenate([np.ones(100), np.tile([0.0, 1.0], 1950)])
        user_b = np.concatenate([np.zeros(100), np.tile([1.0, 0.0], 1950)])
        outcomes = np.column_stack([user_a[:steps], user_b[:steps]])
        assessment = equal_impact_assessment(outcomes, tolerance=0.1)
        assert assessment.satisfied

    def test_rejects_empty_matrix(self):
        with pytest.raises(ValueError):
            equal_impact_assessment(np.empty((0, 3)))

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            equal_impact_assessment(np.ones(10))
