"""Tests for repro.core.filters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.filters import (
    AnomalyClippingFilter,
    CumulativeAverageFilter,
    DefaultRateFilter,
    ExponentialMovingAverageFilter,
    IntegralFilter,
    LoopFilter,
)


class TestDefaultRateFilter:
    def test_initial_observation_has_prior_rates(self):
        loop_filter = DefaultRateFilter(3, prior_rate=0.1)
        observation = loop_filter.observation()
        np.testing.assert_allclose(observation["user_default_rates"], [0.1, 0.1, 0.1])

    def test_update_tracks_defaults(self):
        loop_filter = DefaultRateFilter(2)
        observation = loop_filter.update(np.array([1, 1]), np.array([1, 0]), 0)
        np.testing.assert_allclose(observation["user_default_rates"], [0.0, 1.0])
        assert observation["portfolio_rate"] == pytest.approx(0.5)

    def test_satisfies_the_protocol(self):
        assert isinstance(DefaultRateFilter(2), LoopFilter)


class TestDefaultRateFilterSharding:
    """merge/state-export: the prerequisites of the sharded-population runner."""

    @staticmethod
    def _run_filter(num_users, decisions, actions, prior_rate=0.0):
        loop_filter = DefaultRateFilter(num_users, prior_rate=prior_rate)
        for step, (decision_row, action_row) in enumerate(zip(decisions, actions)):
            loop_filter.update(np.asarray(decision_row), np.asarray(action_row), step)
        return loop_filter

    def test_merge_matches_the_unsharded_filter_exactly(self):
        rng = np.random.default_rng(42)
        num_users, num_steps, split = 20, 7, 8
        decisions = rng.integers(0, 2, size=(num_steps, num_users)).astype(float)
        actions = rng.integers(0, 2, size=(num_steps, num_users)).astype(float) * decisions

        whole = self._run_filter(num_users, decisions, actions)
        shard_a = self._run_filter(split, decisions[:, :split], actions[:, :split])
        shard_b = self._run_filter(
            num_users - split, decisions[:, split:], actions[:, split:]
        )
        merged = shard_a.merge(shard_b)

        merged_observation = merged.observation()
        whole_observation = whole.observation()
        # Offers/repayments are integer counts, so the merge is exact.
        np.testing.assert_array_equal(
            merged_observation["user_default_rates"],
            whole_observation["user_default_rates"],
        )
        assert merged_observation["portfolio_rate"] == whole_observation["portfolio_rate"]
        assert merged.tracker.steps_recorded == whole.tracker.steps_recorded
        np.testing.assert_array_equal(merged.tracker.offers, whole.tracker.offers)
        np.testing.assert_array_equal(
            merged.tracker.repayments, whole.tracker.repayments
        )

    def test_merged_filter_keeps_accepting_updates(self):
        shard_a = self._run_filter(2, [np.ones(2)], [np.ones(2)])
        shard_b = self._run_filter(3, [np.ones(3)], [np.zeros(3)])
        merged = shard_a.merge(shard_b)
        observation = merged.update(np.ones(5), np.ones(5), 1)
        assert observation["user_default_rates"].shape == (5,)
        assert merged.tracker.steps_recorded == 2

    def test_merge_rejects_mismatched_step_counts(self):
        shard_a = self._run_filter(2, [np.ones(2)], [np.ones(2)])
        shard_b = DefaultRateFilter(2)
        with pytest.raises(ValueError):
            shard_a.merge(shard_b)

    def test_merge_rejects_mismatched_priors(self):
        shard_a = DefaultRateFilter(2, prior_rate=0.0)
        shard_b = DefaultRateFilter(2, prior_rate=0.5)
        with pytest.raises(ValueError):
            shard_a.merge(shard_b)

    def test_merge_rejects_foreign_objects(self):
        with pytest.raises(TypeError):
            DefaultRateFilter(2).merge(CumulativeAverageFilter(2))

    def test_state_round_trip_preserves_the_observation(self):
        loop_filter = self._run_filter(
            3, [np.array([1, 1, 0]), np.ones(3)], [np.array([1, 0, 0]), np.ones(3)],
            prior_rate=0.25,
        )
        restored = DefaultRateFilter.from_state(loop_filter.export_state())
        np.testing.assert_array_equal(
            restored.observation()["user_default_rates"],
            loop_filter.observation()["user_default_rates"],
        )
        assert restored.tracker.steps_recorded == loop_filter.tracker.steps_recorded
        assert restored.tracker.num_users == 3

    def test_exported_state_is_a_detached_copy(self):
        loop_filter = self._run_filter(2, [np.ones(2)], [np.ones(2)])
        state = loop_filter.export_state()
        state["offers"][0] = 99.0
        assert loop_filter.tracker.offers[0] == 1.0

    def test_from_state_validates_array_lengths(self):
        from repro.credit.default_rates import DefaultRateTracker

        state = DefaultRateFilter(3).export_state()
        state["offers"] = np.ones(2)
        with pytest.raises(ValueError):
            DefaultRateTracker.from_state(state)


class TestCumulativeAverageFilter:
    def test_initial_value_before_any_update(self):
        loop_filter = CumulativeAverageFilter(2, initial_value=0.5)
        np.testing.assert_allclose(loop_filter.observation()["average_action"], [0.5, 0.5])

    def test_average_accumulates(self):
        loop_filter = CumulativeAverageFilter(2)
        loop_filter.update(np.ones(2), np.array([1.0, 0.0]), 0)
        observation = loop_filter.update(np.ones(2), np.array([0.0, 0.0]), 1)
        np.testing.assert_allclose(observation["average_action"], [0.5, 0.0])
        assert observation["aggregate"] == pytest.approx(0.25)

    def test_rejects_wrong_action_length(self):
        loop_filter = CumulativeAverageFilter(2)
        with pytest.raises(ValueError):
            loop_filter.update(np.ones(2), np.ones(3), 0)

    def test_rejects_non_positive_population(self):
        with pytest.raises(ValueError):
            CumulativeAverageFilter(0)


class TestExponentialMovingAverageFilter:
    def test_single_update_moves_towards_the_action(self):
        loop_filter = ExponentialMovingAverageFilter(1, alpha=0.5, initial_value=0.0)
        observation = loop_filter.update(np.ones(1), np.array([1.0]), 0)
        assert observation["average_action"][0] == pytest.approx(0.5)

    def test_alpha_one_tracks_the_latest_action_exactly(self):
        loop_filter = ExponentialMovingAverageFilter(1, alpha=1.0)
        loop_filter.update(np.ones(1), np.array([0.3]), 0)
        assert loop_filter.observation()["average_action"][0] == pytest.approx(0.3)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverageFilter(1, alpha=0.0)

    def test_rejects_wrong_action_length(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverageFilter(2).update(np.ones(2), np.ones(1), 0)


class TestIntegralFilter:
    def test_integrates_the_gap_to_the_target(self):
        loop_filter = IntegralFilter(target=0.5, gain=1.0)
        loop_filter.update(np.ones(2), np.array([1.0, 1.0]), 0)
        assert loop_filter.integral == pytest.approx(0.5)
        loop_filter.update(np.ones(2), np.array([0.0, 0.0]), 1)
        assert loop_filter.integral == pytest.approx(0.0)

    def test_gain_scales_the_increment(self):
        loop_filter = IntegralFilter(target=0.0, gain=2.0)
        loop_filter.update(np.ones(1), np.array([1.0]), 0)
        assert loop_filter.integral == pytest.approx(2.0)

    def test_rejects_empty_actions(self):
        with pytest.raises(ValueError):
            IntegralFilter().update(np.ones(0), np.ones(0), 0)


class TestAnomalyClippingFilter:
    def test_clips_before_delegating(self):
        inner = CumulativeAverageFilter(2)
        wrapper = AnomalyClippingFilter(inner, lower=0.0, upper=1.0)
        observation = wrapper.update(np.ones(2), np.array([5.0, -3.0]), 0)
        np.testing.assert_allclose(observation["average_action"], [1.0, 0.0])

    def test_observation_delegates_to_inner(self):
        inner = CumulativeAverageFilter(1, initial_value=0.2)
        wrapper = AnomalyClippingFilter(inner, lower=0.0, upper=1.0)
        assert wrapper.observation()["average_action"][0] == pytest.approx(0.2)
        assert wrapper.inner is inner

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            AnomalyClippingFilter(CumulativeAverageFilter(1), lower=1.0, upper=0.0)


class TestBatchedDefaultRateFilter:
    """Every row of the stacked filter matches its standalone twin bitwise."""

    @staticmethod
    def _random_streams(num_trials, num_users, num_steps, seed):
        rng = np.random.default_rng(seed)
        decisions = rng.integers(0, 2, size=(num_steps, num_trials, num_users)).astype(float)
        raw = rng.integers(0, 2, size=(num_steps, num_trials, num_users)).astype(float)
        actions = raw * decisions  # no repayment without an offer
        return decisions, actions

    def test_rows_match_standalone_filters(self):
        from repro.core.filters import BatchedDefaultRateFilter

        trials, users, steps = 4, 50, 6
        decisions, actions = self._random_streams(trials, users, steps, 3)
        batched = BatchedDefaultRateFilter(trials, users, prior_rate=0.25)
        singles = [DefaultRateFilter(users, prior_rate=0.25) for _ in range(trials)]
        for k in range(steps):
            batched.update(decisions[k], actions[k])
            rates = batched.user_rates()
            portfolios = batched.portfolio_rates()
            for t in range(trials):
                observation = singles[t].update(decisions[k, t], actions[k, t], k)
                np.testing.assert_array_equal(
                    rates[t], observation["user_default_rates"]
                )
                assert portfolios[t] == observation["portfolio_rate"]
        assert batched.steps_recorded == steps

    def test_tracker_for_trial_round_trip(self):
        from repro.core.filters import BatchedDefaultRateFilter

        trials, users, steps = 3, 20, 4
        decisions, actions = self._random_streams(trials, users, steps, 9)
        batched = BatchedDefaultRateFilter(trials, users)
        for k in range(steps):
            batched.update(decisions[k], actions[k])
        for t in range(trials):
            tracker = batched.tracker_for_trial(t)
            assert tracker.steps_recorded == steps
            np.testing.assert_array_equal(tracker.user_rates(), batched.user_rates()[t])
        with pytest.raises(ValueError):
            batched.tracker_for_trial(trials)

    def test_validation(self):
        from repro.core.filters import BatchedDefaultRateFilter

        with pytest.raises(ValueError):
            BatchedDefaultRateFilter(0, 5)
        with pytest.raises(ValueError):
            BatchedDefaultRateFilter(2, 0)
        with pytest.raises(ValueError):
            BatchedDefaultRateFilter(2, 5, prior_rate=1.5)
        batched = BatchedDefaultRateFilter(2, 5)
        with pytest.raises(ValueError):
            batched.update(np.ones((2, 4)), np.ones((2, 4)))
