"""Tests for repro.core.history."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.history import SimulationHistory, StepRecord
from repro.data.census import Race


def make_history() -> SimulationHistory:
    """Two users, three steps, hand-written decisions/actions."""
    history = SimulationHistory()
    decisions = [np.array([1.0, 1.0]), np.array([1.0, 0.0]), np.array([1.0, 1.0])]
    actions = [np.array([1.0, 0.0]), np.array([1.0, 0.0]), np.array([0.0, 1.0])]
    for step, (decision, action) in enumerate(zip(decisions, actions)):
        history.append(
            StepRecord(
                step=step,
                public_features={"income": np.array([30.0 + step, 12.0])},
                decisions=decision,
                actions=action,
                observation={"user_default_rates": np.array([0.1, 0.5]), "portfolio_rate": 0.3},
            )
        )
    return history


class TestBasicAccessors:
    def test_counts(self):
        history = make_history()
        assert history.num_steps == 3
        assert history.num_users == 2

    def test_decision_and_action_matrices(self):
        history = make_history()
        assert history.decisions_matrix().shape == (3, 2)
        assert history.actions_matrix().shape == (3, 2)

    def test_public_feature_matrix(self):
        history = make_history()
        incomes = history.public_feature_matrix("income")
        np.testing.assert_allclose(incomes[:, 0], [30.0, 31.0, 32.0])

    def test_missing_public_feature_raises(self):
        with pytest.raises(KeyError):
            make_history().public_feature_matrix("wealth")

    def test_observation_series_per_user(self):
        series = make_history().observation_series("user_default_rates")
        assert series.shape == (3, 2)

    def test_observation_series_scalar(self):
        series = make_history().observation_series("portfolio_rate")
        np.testing.assert_allclose(series, [0.3, 0.3, 0.3])

    def test_missing_observation_raises(self):
        with pytest.raises(KeyError):
            make_history().observation_series("unknown")

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            SimulationHistory().decisions_matrix()
        with pytest.raises(ValueError):
            SimulationHistory().num_users


class TestDerivedSeries:
    def test_running_action_averages_are_cesaro_averages(self):
        history = make_history()
        averages = history.running_action_averages()
        np.testing.assert_allclose(averages[:, 0], [1.0, 1.0, 2.0 / 3.0])

    def test_running_default_rates_match_hand_computation(self):
        history = make_history()
        rates = history.running_default_rates()
        # User 0: offered 3 times, repaid twice -> final ADR 1/3.
        assert rates[-1, 0] == pytest.approx(1.0 / 3.0)
        # User 1: offered at steps 0 and 2, repaid once -> final ADR 1/2.
        assert rates[-1, 1] == pytest.approx(0.5)

    def test_default_rate_is_zero_before_any_offer(self):
        history = SimulationHistory()
        history.append(
            StepRecord(
                step=0,
                public_features={},
                decisions=np.array([0.0, 1.0]),
                actions=np.array([0.0, 1.0]),
                observation={},
            )
        )
        rates = history.running_default_rates()
        assert rates[0, 0] == 0.0
        assert rates[0, 1] == 0.0

    def test_group_series_averages_within_groups(self):
        history = make_history()
        rates = history.running_default_rates()
        groups = {Race.BLACK: np.array([0]), Race.WHITE: np.array([1])}
        series = history.group_series(rates, groups)
        np.testing.assert_allclose(series[Race.BLACK], rates[:, 0])

    def test_group_series_empty_group_is_nan(self):
        history = make_history()
        series = history.group_series(
            history.running_default_rates(), {Race.ASIAN: np.array([], dtype=int)}
        )
        assert np.all(np.isnan(series[Race.ASIAN]))

    def test_approval_rates(self):
        history = make_history()
        np.testing.assert_allclose(history.approval_rates(), [1.0, 0.5, 1.0])


class TestRecordStepPrecomputed:
    """The trusted fast ingest stores exactly what the plain path computes."""

    @staticmethod
    def _streams(users, steps, seed):
        rng = np.random.default_rng(seed)
        decisions = rng.integers(0, 2, size=(steps, users)).astype(float)
        actions = rng.integers(0, 2, size=(steps, users)).astype(float) * decisions
        incomes = rng.uniform(5.0, 100.0, size=(steps, users))
        return decisions, actions, incomes

    def _build_pair(self, users=30, steps=6, seed=17, precompute_until=None):
        from repro.core.history import running_default_rates_from_cums

        decisions, actions, incomes = self._streams(users, steps, seed)
        plain = SimulationHistory()
        fast = SimulationHistory()
        offers_cum = np.zeros(users)
        repayments_cum = np.zeros(users)
        actions_cum = np.zeros(users)
        cutover = steps if precompute_until is None else precompute_until
        for k in range(steps):
            observation = {"portfolio_rate": float(k) / steps}
            plain.record_step(
                k, {"income": incomes[k]}, decisions[k], actions[k], observation
            )
            offers_cum += decisions[k]
            repayments_cum += actions[k] * decisions[k]
            actions_cum += actions[k]
            if k < cutover:
                fast.record_step_precomputed(
                    k,
                    {"income": incomes[k]},
                    decisions[k],
                    actions[k],
                    observation,
                    running_rates=running_default_rates_from_cums(
                        offers_cum, repayments_cum
                    ),
                    running_actions=actions_cum / float(k + 1),
                    approval=float(np.mean(decisions[k])),
                )
            else:
                fast.record_step(
                    k, {"income": incomes[k]}, decisions[k], actions[k], observation
                )
        return plain, fast

    def _assert_identical(self, plain, fast):
        np.testing.assert_array_equal(plain.decisions_matrix(), fast.decisions_matrix())
        np.testing.assert_array_equal(plain.actions_matrix(), fast.actions_matrix())
        np.testing.assert_array_equal(
            plain.public_feature_matrix("income"), fast.public_feature_matrix("income")
        )
        np.testing.assert_array_equal(
            plain.observation_series("portfolio_rate"),
            fast.observation_series("portfolio_rate"),
        )
        np.testing.assert_array_equal(
            plain.running_default_rates(), fast.running_default_rates()
        )
        np.testing.assert_array_equal(
            plain.running_action_averages(), fast.running_action_averages()
        )
        np.testing.assert_array_equal(plain.approval_rates(), fast.approval_rates())

    def test_matches_plain_ingest_bitwise(self):
        plain, fast = self._build_pair()
        self._assert_identical(plain, fast)
        np.testing.assert_array_equal(
            fast.running_default_rates(), fast.recompute_running_default_rates()
        )

    def test_mixing_with_plain_record_step_rebuilds_cums(self):
        # Three precomputed steps, then plain ingest: the cums rebuild must
        # be exact so the later incremental rows stay bit-identical.
        plain, fast = self._build_pair(steps=8, precompute_until=3)
        self._assert_identical(plain, fast)

    def test_validation_rejects_misshapen_rows(self):
        history = SimulationHistory()
        with pytest.raises(ValueError):
            history.record_step_precomputed(
                0,
                {},
                np.ones(4),
                np.ones(4),
                {},
                running_rates=np.ones(3),
                running_actions=np.ones(4),
                approval=1.0,
            )
