"""Tests for repro.core.ai_system."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ai_system import (
    AISystem,
    ConstantDecisionSystem,
    CreditScoringSystem,
    ScorecardDecisionSystem,
)
from repro.credit.lender import Lender
from repro.scoring.scorecard import paper_table1_scorecard


def observation_for(num_users: int, rates=None):
    rates_array = np.zeros(num_users) if rates is None else np.asarray(rates, dtype=float)
    return {"user_default_rates": rates_array, "portfolio_rate": float(rates_array.mean())}


class TestConstantDecisionSystem:
    def test_approves_everyone(self):
        system = ConstantDecisionSystem(decision=1)
        decisions = system.decide({"income": np.array([10.0, 20.0])}, observation_for(2), 0)
        np.testing.assert_array_equal(decisions, [1.0, 1.0])

    def test_denies_everyone(self):
        system = ConstantDecisionSystem(decision=0)
        decisions = system.decide({"income": np.array([10.0, 20.0])}, observation_for(2), 0)
        np.testing.assert_array_equal(decisions, [0.0, 0.0])

    def test_infers_size_from_observation_when_no_features(self):
        system = ConstantDecisionSystem()
        decisions = system.decide({}, observation_for(3), 0)
        assert decisions.shape == (3,)

    def test_rejects_invalid_decision_value(self):
        with pytest.raises(ValueError):
            ConstantDecisionSystem(decision=2)

    def test_cannot_infer_size_from_scalars_only(self):
        system = ConstantDecisionSystem()
        with pytest.raises(ValueError):
            system.decide({}, {"portfolio_rate": 0.1}, 0)

    def test_update_is_a_no_op(self):
        system = ConstantDecisionSystem()
        assert (
            system.update({"income": np.ones(2)}, np.ones(2), np.ones(2), observation_for(2), 0)
            is None
        )

    def test_satisfies_the_protocol(self):
        assert isinstance(ConstantDecisionSystem(), AISystem)


class TestScorecardDecisionSystem:
    def test_uses_the_fixed_card(self):
        system = ScorecardDecisionSystem(paper_table1_scorecard(), cutoff=0.4)
        decisions = system.decide(
            {"income": np.array([50.0, 10.0])},
            observation_for(2, rates=[0.1, 0.9]),
            0,
        )
        # Income $50K, ADR 0.1 -> 4.953 > 0.4 approved; income $10K, ADR 0.9 -> -7.353 denied.
        np.testing.assert_array_equal(decisions, [1.0, 0.0])

    def test_update_never_changes_the_card(self):
        system = ScorecardDecisionSystem(paper_table1_scorecard())
        card_before = system.scorecard
        system.update(
            {"income": np.array([50.0])}, np.ones(1), np.ones(1), observation_for(1), 0
        )
        assert system.scorecard is card_before

    def test_satisfies_the_protocol(self):
        assert isinstance(ScorecardDecisionSystem(paper_table1_scorecard()), AISystem)


class TestCreditScoringSystem:
    def test_warm_up_decisions_approve_everyone(self):
        system = CreditScoringSystem(Lender(warm_up_rounds=1))
        decisions = system.decide({"income": np.array([5.0, 80.0])}, observation_for(2), 0)
        np.testing.assert_array_equal(decisions, [1.0, 1.0])

    def test_update_then_decide_uses_a_trained_scorecard(self):
        rng = np.random.default_rng(0)
        num_users = 300
        incomes = rng.uniform(5.0, 120.0, num_users)
        system = CreditScoringSystem(Lender(warm_up_rounds=1))
        observation = observation_for(num_users)
        decisions = system.decide({"income": incomes}, observation, 0)
        # Users below the living cost mostly default, wealthy users repay.
        actions = (incomes > 20.0).astype(float)
        system.update({"income": incomes}, decisions, actions, observation, 0)
        next_rates = 1.0 - actions
        next_decisions = system.decide(
            {"income": incomes}, observation_for(num_users, rates=next_rates), 1
        )
        assert not np.all(next_decisions == 1.0)
        assert system.last_scores is not None
        # Wealthy, clean users should be approved at a higher rate than poor defaulters.
        assert next_decisions[incomes > 20.0].mean() > next_decisions[incomes <= 20.0].mean()

    def test_last_scores_is_none_before_any_decision(self):
        assert CreditScoringSystem().last_scores is None

    def test_lender_accessor(self):
        lender = Lender()
        assert CreditScoringSystem(lender).lender is lender

    def test_satisfies_the_protocol(self):
        assert isinstance(CreditScoringSystem(), AISystem)
