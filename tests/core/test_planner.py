"""Unit tests of the execution planner's heuristics and surfaces."""

from __future__ import annotations

import pytest

from repro.core import planner
from repro.core.planner import (
    EXECUTION_MODES,
    CampaignBudget,
    ExecutionPlan,
    measure_dispatch_overhead,
    plan_campaign_jobs,
    plan_execution,
    validate_execution_settings,
)


def _plan(execution, **overrides):
    inputs = dict(trials=5, users=1000, steps=19, cpu_count=8)
    inputs.update(overrides)
    return plan_execution(execution, **inputs)


class TestExplicitModes:
    def test_serial_is_serial(self):
        plan = _plan("serial")
        assert plan.layout == "serial"
        assert not (plan.parallel or plan.trial_batch or plan.shard_parallel)

    def test_batch_routes_to_the_tensor_engine(self):
        plan = _plan("batch")
        assert plan.layout == "batch"
        assert plan.trial_batch

    def test_pool_sizes_workers_from_cores_and_trials(self):
        assert _plan("pool").max_workers == 5  # min(5 trials, 8 cores)
        assert _plan("pool", cpu_count=2).max_workers == 2
        assert _plan("pool", max_workers=3).max_workers == 3

    def test_pool_with_one_trial_degrades_to_serial(self):
        plan = _plan("pool", trials=1)
        assert plan.layout == "serial"
        assert plan.execution == "pool"  # the request is preserved

    def test_shard_caps_at_the_canonical_shard_count(self):
        plan = _plan("shard", trials=1, users=100_000)
        assert plan.layout == "shard"
        assert plan.num_shards == 8  # NUM_CANONICAL_SHARDS
        assert plan.shard_parallel

    def test_shard_honours_an_explicit_shard_hint(self):
        assert _plan("shard", num_shards=4).num_shards == 4

    def test_shard_with_a_tiny_population_degrades_to_serial(self):
        assert _plan("shard", users=1).layout == "serial"


class TestAutoHeuristics:
    def test_one_core_many_trials_batches(self):
        plan = _plan("auto", cpu_count=1)
        assert plan.layout == "batch"

    def test_one_core_with_checkpointing_stays_serial(self):
        plan = _plan("auto", cpu_count=1, checkpoint_every=3)
        assert plan.layout == "serial"
        assert not plan.trial_batch

    def test_many_cores_many_trials_pools(self):
        plan = _plan("auto")
        assert plan.layout == "pool"
        assert plan.max_workers == 5

    def test_single_large_trial_shards(self):
        plan = _plan("auto", trials=1, users=100_000)
        assert plan.layout == "shard"
        assert plan.num_shards == 8

    def test_single_small_trial_stays_serial(self):
        assert _plan("auto", trials=1, users=200).layout == "serial"

    def test_spare_cores_compose_pool_with_shards(self):
        plan = _plan("auto", trials=2, users=100_000, cpu_count=16)
        assert plan.layout == "pool+shard"
        assert plan.max_workers == 2
        assert plan.shard_parallel and plan.num_shards >= 2

    def test_no_spare_cores_means_no_composition(self):
        plan = _plan("auto", trials=8, users=100_000, cpu_count=8)
        assert plan.layout == "pool"

    def test_defaults_to_the_detected_core_count(self, monkeypatch):
        monkeypatch.setattr(planner, "_detect_cpu_count", lambda: 3)
        plan = plan_execution("auto", trials=5, users=100, steps=19)
        assert plan.cpu_count == 3


class TestCalibration:
    def test_negligible_dispatch_keeps_the_serial_loop(self, monkeypatch):
        monkeypatch.setattr(planner, "measure_dispatch_overhead", lambda users: 0.0)
        plan = _plan("auto", cpu_count=1, calibrate=True)
        assert plan.layout == "serial"
        assert plan.calibrated

    def test_heavy_dispatch_confirms_the_batch_choice(self, monkeypatch):
        monkeypatch.setattr(planner, "measure_dispatch_overhead", lambda users: 0.5)
        plan = _plan("auto", cpu_count=1, calibrate=True)
        assert plan.layout == "batch"
        assert plan.calibrated

    def test_probe_returns_a_fraction(self):
        fraction = measure_dispatch_overhead(500, probes=1)
        assert 0.0 <= fraction <= 1.0


class TestPlanSurface:
    def test_modes_constant(self):
        assert EXECUTION_MODES == ("auto", "serial", "batch", "pool", "shard")

    def test_describe_names_the_layout(self):
        assert "pool" in _plan("pool").describe()
        assert "in-process" in _plan("serial").describe()

    def test_plan_rejects_batch_with_pools(self):
        with pytest.raises(ValueError, match="batched plan"):
            ExecutionPlan(
                execution="batch",
                layout="batch",
                trial_batch=True,
                parallel=True,
                max_workers=2,
                num_shards=1,
                shard_parallel=False,
                cpu_count=4,
            )

    def test_plan_rejects_single_shard_pools(self):
        with pytest.raises(ValueError, match="two worker shards"):
            ExecutionPlan(
                execution="shard",
                layout="shard",
                trial_batch=False,
                parallel=False,
                max_workers=None,
                num_shards=1,
                shard_parallel=True,
                cpu_count=4,
            )

    def test_validate_settings_accepts_none_with_legacy_switches(self):
        # None means "legacy knobs in charge" — they may be set freely.
        validate_execution_settings(None, parallel=True, trial_batch=True)

    def test_bad_inputs_are_rejected(self):
        with pytest.raises(ValueError, match="users"):
            plan_execution("auto", trials=1, users=0, steps=5)
        with pytest.raises(ValueError, match="steps"):
            plan_execution("auto", trials=1, users=10, steps=-1)
        with pytest.raises(ValueError, match="history_mode"):
            plan_execution("auto", trials=1, users=10, steps=5, history_mode="x")
        with pytest.raises(ValueError, match="retrain_mode"):
            plan_execution("auto", trials=1, users=10, steps=5, retrain_mode="x")
        with pytest.raises(ValueError, match="cpu_count"):
            plan_execution("auto", trials=1, users=10, steps=5, cpu_count=0)
        with pytest.raises(ValueError, match="max_workers"):
            plan_execution("auto", trials=1, users=10, steps=5, max_workers=0)


class TestPlannerMemos:
    @pytest.fixture(autouse=True)
    def _fresh_caches(self):
        planner.reset_planner_caches()
        yield
        planner.reset_planner_caches()

    def test_cpu_count_is_probed_once_per_process(self, monkeypatch):
        calls = []

        def counting_cpu_count():
            calls.append(None)
            return 6

        monkeypatch.setattr(planner.os, "cpu_count", counting_cpu_count)
        assert planner._detect_cpu_count() == 6
        assert planner._detect_cpu_count() == 6
        assert len(calls) == 1  # second call served from the memo

    def test_reset_forgets_the_cpu_memo(self, monkeypatch):
        monkeypatch.setattr(planner.os, "cpu_count", lambda: 6)
        assert planner._detect_cpu_count() == 6
        monkeypatch.setattr(planner.os, "cpu_count", lambda: 2)
        assert planner._detect_cpu_count() == 6  # memo still in charge
        planner.reset_planner_caches()
        assert planner._detect_cpu_count() == 2

    def test_dispatch_probe_is_memoized_on_the_capped_size(self):
        first = measure_dispatch_overhead(500, probes=1)
        assert planner._DISPATCH_MEMO  # the probe populated the memo
        # Same capped size: the memoized fraction comes back verbatim.
        assert measure_dispatch_overhead(500, probes=1) == first

    def test_dispatch_memo_keys_on_the_capped_probe_size(self):
        # Every size beyond the cap shares one measurement...
        measure_dispatch_overhead(1 << 17, probes=1)
        measure_dispatch_overhead(1 << 20, probes=1)
        assert len(planner._DISPATCH_MEMO) == 1
        # ...while a distinct small size probes again.
        measure_dispatch_overhead(64, probes=1)
        assert len(planner._DISPATCH_MEMO) == 2

    def test_reset_forgets_the_dispatch_memo(self):
        measure_dispatch_overhead(500, probes=1)
        planner.reset_planner_caches()
        assert not planner._DISPATCH_MEMO


class TestCampaignBudget:
    def test_more_jobs_than_cores_runs_one_core_each(self):
        budget = plan_campaign_jobs(24, cpu_count=8)
        assert budget.job_workers == 8
        assert budget.cores_per_job == 1

    def test_more_cores_than_jobs_splits_the_remainder(self):
        budget = plan_campaign_jobs(2, cpu_count=8)
        assert budget.job_workers == 2
        assert budget.cores_per_job == 4

    def test_uneven_split_rounds_down(self):
        budget = plan_campaign_jobs(3, cpu_count=8)
        assert budget.job_workers == 3
        assert budget.cores_per_job == 2  # 8 // 3, never oversubscribed

    def test_max_workers_caps_concurrency_and_widens_each_job(self):
        budget = plan_campaign_jobs(24, cpu_count=8, max_workers=2)
        assert budget.job_workers == 2
        assert budget.cores_per_job == 4

    def test_no_pending_jobs_still_yields_a_valid_budget(self):
        budget = plan_campaign_jobs(0, cpu_count=4)
        assert budget.jobs == 0
        assert budget.job_workers == 1
        assert budget.cores_per_job == 4

    def test_describe_names_the_split(self):
        text = plan_campaign_jobs(24, cpu_count=8).describe()
        assert "8 concurrent job(s)" in text
        assert "24 job(s) pending" in text

    def test_bad_inputs_are_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            plan_campaign_jobs(-1, cpu_count=4)
        with pytest.raises(ValueError, match="cpu_count"):
            plan_campaign_jobs(4, cpu_count=0)
        with pytest.raises(ValueError, match="max_workers"):
            plan_campaign_jobs(4, cpu_count=4, max_workers=0)

    def test_budget_rejects_oversubscription(self):
        with pytest.raises(ValueError, match="oversubscribes"):
            CampaignBudget(jobs=8, job_workers=8, cores_per_job=4, cpu_count=4)
