"""Tests for repro.core.metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import (
    approval_rates_by_group,
    default_rate_series,
    demographic_parity_gap,
    equal_opportunity_gap,
    group_average_series,
)
from repro.data.census import Race


@pytest.fixture
def simple_groups():
    return {Race.BLACK: np.array([0, 1]), Race.WHITE: np.array([2, 3])}


class TestApprovalRates:
    def test_rates_by_group(self, simple_groups):
        decisions = np.array([[1, 1, 1, 1], [0, 0, 1, 1]], dtype=float)
        rates = approval_rates_by_group(decisions, simple_groups)
        assert rates[Race.BLACK] == pytest.approx(0.5)
        assert rates[Race.WHITE] == pytest.approx(1.0)

    def test_empty_group_reports_nan(self):
        decisions = np.ones((2, 2))
        rates = approval_rates_by_group(decisions, {Race.ASIAN: np.array([], dtype=int)})
        assert np.isnan(rates[Race.ASIAN])

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            approval_rates_by_group(np.ones(4), {Race.BLACK: np.array([0])})


class TestDemographicParityGap:
    def test_equal_rates_give_zero_gap(self, simple_groups):
        decisions = np.ones((3, 4))
        assert demographic_parity_gap(decisions, simple_groups) == pytest.approx(0.0)

    def test_unequal_rates_give_the_difference(self, simple_groups):
        decisions = np.array([[1, 1, 0, 0]], dtype=float)
        assert demographic_parity_gap(decisions, simple_groups) == pytest.approx(1.0)

    def test_single_group_gives_zero(self):
        decisions = np.ones((2, 2))
        assert demographic_parity_gap(decisions, {Race.BLACK: np.array([0, 1])}) == 0.0


class TestEqualOpportunityGap:
    def test_equal_rates_among_qualified(self, simple_groups):
        decisions = np.array([[1, 0, 1, 0]], dtype=float)
        qualified = np.array([[1, 0, 1, 0]], dtype=float)
        assert equal_opportunity_gap(decisions, qualified, simple_groups) == pytest.approx(0.0)

    def test_gap_when_one_group_is_underserved(self, simple_groups):
        decisions = np.array([[0, 0, 1, 1]], dtype=float)
        qualified = np.ones((1, 4))
        assert equal_opportunity_gap(decisions, qualified, simple_groups) == pytest.approx(1.0)

    def test_groups_without_qualified_members_are_skipped(self, simple_groups):
        decisions = np.array([[1, 1, 1, 1]], dtype=float)
        qualified = np.array([[1, 1, 0, 0]], dtype=float)
        assert equal_opportunity_gap(decisions, qualified, simple_groups) == 0.0

    def test_shape_mismatch_is_rejected(self, simple_groups):
        with pytest.raises(ValueError):
            equal_opportunity_gap(np.ones((2, 4)), np.ones((1, 4)), simple_groups)


class TestDefaultRateSeries:
    def test_matches_hand_computation(self):
        decisions = np.array([[1, 1], [1, 0], [1, 1]], dtype=float)
        actions = np.array([[1, 0], [0, 0], [1, 1]], dtype=float)
        rates = default_rate_series(decisions, actions)
        assert rates[-1, 0] == pytest.approx(1.0 / 3.0)
        assert rates[-1, 1] == pytest.approx(0.5)

    def test_no_offers_yield_zero_rate(self):
        rates = default_rate_series(np.zeros((3, 2)), np.zeros((3, 2)))
        np.testing.assert_allclose(rates, 0.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            default_rate_series(np.ones((2, 2)), np.ones((3, 2)))


class TestGroupAverageSeries:
    def test_per_step_group_means(self, simple_groups):
        series = np.array([[0.0, 1.0, 2.0, 3.0], [4.0, 5.0, 6.0, 7.0]])
        grouped = group_average_series(series, simple_groups)
        np.testing.assert_allclose(grouped[Race.BLACK], [0.5, 4.5])
        np.testing.assert_allclose(grouped[Race.WHITE], [2.5, 6.5])

    def test_empty_group_is_nan(self):
        series = np.ones((2, 2))
        grouped = group_average_series(series, {Race.ASIAN: np.array([], dtype=int)})
        assert np.all(np.isnan(grouped[Race.ASIAN]))

    def test_rejects_1d_series(self):
        with pytest.raises(ValueError):
            group_average_series(np.ones(5), {Race.BLACK: np.array([0])})
