"""Tests for repro.core.loop (the closed-loop orchestrator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ai_system import ConstantDecisionSystem, CreditScoringSystem
from repro.core.filters import CumulativeAverageFilter, DefaultRateFilter
from repro.core.history import SimulationHistory
from repro.core.loop import ClosedLoop
from repro.core.population import CreditPopulation
from repro.credit.lender import Lender
from repro.data.synthetic import PopulationSpec, generate_population


@pytest.fixture
def credit_loop(income_table):
    population = CreditPopulation(
        population=generate_population(PopulationSpec(size=60), 1),
        income_table=income_table,
    )
    return ClosedLoop(
        ai_system=CreditScoringSystem(Lender(warm_up_rounds=2)),
        population=population,
        loop_filter=DefaultRateFilter(num_users=60),
    )


class TestRun:
    def test_history_has_one_record_per_step(self, credit_loop):
        history = credit_loop.run(5, rng=0)
        assert history.num_steps == 5
        assert history.num_users == 60

    def test_run_is_reproducible_with_a_seed(self, income_table):
        def build():
            population = CreditPopulation(
                population=generate_population(PopulationSpec(size=40), 3),
                income_table=income_table,
            )
            return ClosedLoop(
                ai_system=CreditScoringSystem(Lender(warm_up_rounds=2)),
                population=population,
                loop_filter=DefaultRateFilter(num_users=40),
            )

        first = build().run(6, rng=42)
        second = build().run(6, rng=42)
        np.testing.assert_array_equal(first.decisions_matrix(), second.decisions_matrix())
        np.testing.assert_array_equal(first.actions_matrix(), second.actions_matrix())

    def test_warm_up_steps_approve_everyone(self, credit_loop):
        history = credit_loop.run(4, rng=0)
        decisions = history.decisions_matrix()
        np.testing.assert_array_equal(decisions[0], np.ones(60))
        np.testing.assert_array_equal(decisions[1], np.ones(60))

    def test_running_in_chunks_matches_incremental_history(self, income_table):
        population = CreditPopulation(
            population=generate_population(PopulationSpec(size=30), 5),
            income_table=income_table,
        )
        loop = ClosedLoop(
            ai_system=CreditScoringSystem(Lender(warm_up_rounds=2)),
            population=population,
            loop_filter=DefaultRateFilter(num_users=30),
        )
        history = loop.run(3, rng=7)
        history = loop.run(2, rng=8, history=history)
        assert history.num_steps == 5
        assert [record.step for record in history.records] == [0, 1, 2, 3, 4]

    def test_zero_steps_returns_empty_history(self, credit_loop):
        history = credit_loop.run(0, rng=0)
        assert history.num_steps == 0

    def test_negative_steps_are_rejected(self, credit_loop):
        with pytest.raises(ValueError):
            credit_loop.run(-1)

    def test_accessors_expose_the_boxes(self, credit_loop):
        assert credit_loop.ai_system is not None
        assert credit_loop.population is not None
        assert credit_loop.loop_filter is not None


class TestStepValidation:
    def test_wrong_decision_length_is_detected(self, income_table):
        class BrokenSystem(ConstantDecisionSystem):
            def decide(self, public_features, observation, k):
                return np.ones(3)  # wrong size on purpose

        population = CreditPopulation(
            population=generate_population(PopulationSpec(size=10), 2),
            income_table=income_table,
        )
        loop = ClosedLoop(
            ai_system=BrokenSystem(),
            population=population,
            loop_filter=DefaultRateFilter(num_users=10),
        )
        with pytest.raises(ValueError, match="one decision per user"):
            loop.run(1, rng=0)

    def test_observation_in_record_is_post_update(self, credit_loop):
        history = credit_loop.run(1, rng=0)
        record = history.records[0]
        # After the first step every user was offered a mortgage, so the
        # recorded observation reflects those offers.
        rates = record.observation["user_default_rates"]
        actions = record.actions
        np.testing.assert_allclose(rates, 1.0 - actions)

    def test_retrain_false_keeps_the_policy_fixed(self, income_table):
        population = CreditPopulation(
            population=generate_population(PopulationSpec(size=30), 9),
            income_table=income_table,
        )
        system = CreditScoringSystem(Lender(warm_up_rounds=30))
        loop = ClosedLoop(
            ai_system=system,
            population=population,
            loop_filter=DefaultRateFilter(num_users=30),
            retrain=False,
        )
        loop.run(3, rng=0)
        assert system.lender.scorecard is None


class TestGenericLoop:
    def test_constant_policy_with_cumulative_filter(self, income_table):
        population = CreditPopulation(
            population=generate_population(PopulationSpec(size=20), 11),
            income_table=income_table,
        )
        loop = ClosedLoop(
            ai_system=ConstantDecisionSystem(decision=1),
            population=population,
            loop_filter=CumulativeAverageFilter(num_users=20),
        )
        history = loop.run(4, rng=1)
        assert history.num_steps == 4
        observation = history.records[-1].observation
        assert "average_action" in observation


class TestStreamBaseResolution:
    """Fresh runs re-resolve randomness; only continuations reuse the base."""

    def _build(self):
        from repro.core.ai_system import CreditScoringSystem
        from repro.core.filters import DefaultRateFilter
        from repro.core.population import CreditPopulation
        from repro.credit.lender import Lender
        from repro.data.synthetic import PopulationSpec, generate_population

        population = CreditPopulation(
            population=generate_population(
                PopulationSpec(size=30), np.random.default_rng(0)
            )
        )
        return ClosedLoop(
            ai_system=CreditScoringSystem(Lender(warm_up_rounds=2)),
            population=population,
            loop_filter=DefaultRateFilter(num_users=30),
        )

    def test_repeated_entropy_steps_are_independent(self):
        loop = self._build()
        first = loop.step(0)
        second = loop.step(0)
        assert not np.array_equal(
            first.public_features["income"], second.public_features["income"]
        )

    def test_fresh_runs_with_a_generator_are_independent(self):
        generator = np.random.default_rng(12)
        loop = self._build()
        first = loop.run(3, rng=generator)
        second = self._build().run(3, rng=generator)
        assert not np.array_equal(
            first.public_feature_matrix("income"),
            second.public_feature_matrix("income"),
        )

    def test_integer_seed_always_resets_the_base(self):
        first = self._build().run(3, rng=5)
        second = self._build().run(3, rng=5)
        assert np.array_equal(
            first.public_feature_matrix("income"),
            second.public_feature_matrix("income"),
        )


class TestSuffstatsProtocolResolution:
    """The pooled suffstats protocol engages only on a complete, matching spec."""

    def _loop(self, system) -> ClosedLoop:
        population = CreditPopulation(
            population=generate_population(PopulationSpec(size=30), 1)
        )
        return ClosedLoop(
            ai_system=system,
            population=population,
            loop_filter=DefaultRateFilter(num_users=30),
        )

    def test_compressed_credit_system_resolves_a_spec(self):
        loop = self._loop(CreditScoringSystem(Lender(retrain_mode="compressed")))
        spec = loop._resolve_suffstats_spec(None)
        assert spec == {"feature": "income", "income_threshold": 15.0}

    def test_exact_system_never_engages_the_protocol(self):
        loop = self._loop(CreditScoringSystem(Lender()))
        assert loop._resolve_suffstats_spec(None) is None
        # Explicit "compressed" cannot be forced onto an exact-mode system.
        assert loop._resolve_suffstats_spec("compressed") is None

    def test_explicit_exact_disables_the_protocol(self):
        loop = self._loop(CreditScoringSystem(Lender(retrain_mode="compressed")))
        assert loop._resolve_suffstats_spec("exact") is None

    def test_incomplete_spec_is_rejected_at_eligibility_time(self):
        """Regression: a spec missing income_threshold used to pass the
        guard and KeyError inside a worker process mid-trial."""

        class IncompleteSpecSystem(CreditScoringSystem):
            @property
            def suffstats_spec(self):
                return {"feature": "income"}

        loop = self._loop(IncompleteSpecSystem(Lender(retrain_mode="compressed")))
        assert loop._resolve_suffstats_spec(None) is None

    def test_invalid_retrain_mode_is_rejected_by_run(self):
        loop = self._loop(CreditScoringSystem(Lender()))
        with pytest.raises(ValueError):
            loop.run(1, rng=0, retrain_mode="subsampled")
