"""Tests for repro.core.streaming (StreamingAggregator, AggregateHistory)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.history import FullHistoryRequiredError, StepRecord
from repro.core.streaming import AggregateHistory, StreamingAggregator, sequential_sum


def _binary_stream(num_steps: int, num_users: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    decisions = rng.integers(0, 2, size=(num_steps, num_users)).astype(float)
    actions = rng.integers(0, 2, size=(num_steps, num_users)).astype(float) * decisions
    return decisions, actions


class TestStreamingAggregator:
    def test_rejects_non_positive_population(self):
        with pytest.raises(ValueError):
            StreamingAggregator(0)

    def test_rejects_out_of_range_group_indices(self):
        with pytest.raises(ValueError):
            StreamingAggregator(4, groups={"bad": np.array([0, 4])})

    def test_rejects_wrong_row_lengths(self):
        aggregator = StreamingAggregator(3)
        with pytest.raises(ValueError):
            aggregator.update(np.ones(2), np.ones(3))
        with pytest.raises(ValueError):
            aggregator.update(np.ones(3), np.ones(4))

    def test_series_shapes_track_the_step_count(self):
        groups = {"a": np.array([0, 1]), "b": np.array([2])}
        aggregator = StreamingAggregator(3, groups=groups)
        decisions, actions = _binary_stream(5, 3)
        for step in range(5):
            aggregator.update(decisions[step], actions[step])
        assert aggregator.num_steps == 5
        assert aggregator.num_users == 3
        assert aggregator.group_sizes == {"a": 2, "b": 1}
        for series in (
            aggregator.approval_rate_series(),
            aggregator.portfolio_rate_series(),
            aggregator.rate_sum_series(),
            aggregator.rate_sumsq_series(),
            aggregator.rate_min_series(),
            aggregator.rate_max_series(),
        ):
            assert series.shape == (5,)
        for mapping in (
            aggregator.group_default_rate_series(),
            aggregator.group_action_average_series(),
            aggregator.group_approval_series(),
        ):
            assert set(mapping) == {"a", "b"}
            assert all(series.shape == (5,) for series in mapping.values())

    def test_known_two_step_stream(self):
        aggregator = StreamingAggregator(2, groups={"all": np.array([0, 1])})
        aggregator.update(np.array([1.0, 1.0]), np.array([1.0, 0.0]))
        aggregator.update(np.array([1.0, 0.0]), np.array([1.0, 0.0]))
        # After step 0: user rates are (0, 1); after step 1: (0, 1).
        np.testing.assert_allclose(
            aggregator.group_default_rate_series()["all"], [0.5, 0.5]
        )
        np.testing.assert_allclose(aggregator.approval_rate_series(), [1.0, 0.5])
        # Offers 2 then 3, repayments 1 then 2.
        np.testing.assert_allclose(
            aggregator.portfolio_rate_series(), [0.5, 1.0 - 2.0 / 3.0]
        )
        np.testing.assert_allclose(
            aggregator.group_action_average_series()["all"], [0.5, 0.5]
        )

    def test_empty_group_reports_nan_series(self):
        aggregator = StreamingAggregator(2, groups={"none": np.array([], dtype=int)})
        aggregator.update(np.ones(2), np.ones(2))
        assert np.all(np.isnan(aggregator.group_default_rate_series()["none"]))

    def test_growth_beyond_initial_capacity(self):
        aggregator = StreamingAggregator(2, groups={"all": np.array([0, 1])})
        decisions, actions = _binary_stream(100, 2, seed=3)
        for step in range(100):
            aggregator.update(decisions[step], actions[step])
        assert aggregator.num_steps == 100
        assert aggregator.approval_rate_series().shape == (100,)
        np.testing.assert_array_equal(
            aggregator.approval_rate_series(), decisions.mean(axis=1)
        )

    def test_merge_validates_compatibility(self):
        left = StreamingAggregator(2, groups={"a": np.array([0])})
        right = StreamingAggregator(2, groups={"a": np.array([0])})
        left.update(np.ones(2), np.ones(2))
        with pytest.raises(ValueError):
            left.merge(right)  # step counts differ
        right.update(np.ones(2), np.ones(2))
        other_keys = StreamingAggregator(2, groups={"b": np.array([0])})
        other_keys.update(np.ones(2), np.ones(2))
        with pytest.raises(ValueError):
            left.merge(other_keys)
        with pytest.raises(TypeError):
            left.merge(object())

    def test_from_state_rebuilds_a_live_aggregator(self):
        groups = {"a": np.array([0, 2]), "b": np.array([1])}
        aggregator = StreamingAggregator(3, groups=groups, prior_rate=0.1)
        decisions, actions = _binary_stream(5, 3, seed=11)
        for step in range(5):
            aggregator.update(decisions[step], actions[step])
        restored = StreamingAggregator.from_state(
            pickle.loads(pickle.dumps(aggregator.export_state()))
        )
        assert restored.num_steps == 5
        assert restored.prior_rate == 0.1
        np.testing.assert_array_equal(
            restored.approval_rate_series(), aggregator.approval_rate_series()
        )
        for key in groups:
            np.testing.assert_array_equal(
                restored.group_default_rate_series()[key],
                aggregator.group_default_rate_series()[key],
            )
        # The restored aggregator stays live: it can keep ingesting steps
        # and produce exactly what the uninterrupted original produces.
        extra_decisions, extra_actions = _binary_stream(3, 3, seed=12)
        for step in range(3):
            restored.update(extra_decisions[step], extra_actions[step])
            aggregator.update(extra_decisions[step], extra_actions[step])
        np.testing.assert_array_equal(
            restored.group_default_rate_series()["a"],
            aggregator.group_default_rate_series()["a"],
        )

    def test_from_state_validates_shapes(self):
        aggregator = StreamingAggregator(2, groups={"a": np.array([0])})
        aggregator.update(np.ones(2), np.ones(2))
        state = aggregator.export_state()
        bad_users = dict(state, offers_cum=np.ones(3))
        with pytest.raises(ValueError):
            StreamingAggregator.from_state(bad_users)
        bad_steps = dict(state, approvals=np.ones(4))
        with pytest.raises(ValueError):
            StreamingAggregator.from_state(bad_steps)
        bad_groups = dict(state, group_rate_sums={"zzz": np.ones(1)})
        with pytest.raises(ValueError):
            StreamingAggregator.from_state(bad_groups)

    def test_export_state_round_trips_through_pickle(self):
        aggregator = StreamingAggregator(3, groups={"a": np.array([0, 2])})
        decisions, actions = _binary_stream(4, 3, seed=9)
        for step in range(4):
            aggregator.update(decisions[step], actions[step])
        state = pickle.loads(pickle.dumps(aggregator.export_state()))
        assert state["num_users"] == 3
        assert state["num_steps"] == 4
        np.testing.assert_array_equal(
            state["approvals"], aggregator.approval_rate_series()
        )
        np.testing.assert_array_equal(state["offers_cum"], decisions.sum(axis=0))


class TestAggregateHistory:
    def test_record_step_and_series(self):
        history = AggregateHistory(groups={"all": np.array([0, 1])})
        decisions, actions = _binary_stream(6, 2, seed=1)
        for step in range(6):
            history.record_step(step, {}, decisions[step], actions[step], {})
        assert history.num_steps == 6
        assert history.num_users == 2
        assert history.approval_rates().shape == (6,)
        assert not history.approval_rates().flags.writeable
        assert set(history.group_default_rate_series()) == {"all"}

    def test_append_accepts_step_records(self):
        history = AggregateHistory()
        record = StepRecord(
            step=0,
            public_features={"income": np.array([1.0, 2.0])},
            decisions=np.array([1.0, 0.0]),
            actions=np.array([1.0, 0.0]),
            observation={"portfolio_rate": 0.0},
        )
        history.append(record)
        assert history.num_steps == 1
        assert history.num_users == 2

    def test_rejects_non_contiguous_steps(self):
        history = AggregateHistory()
        history.record_step(0, {}, np.ones(2), np.ones(2), {})
        with pytest.raises(ValueError, match="contiguous"):
            history.record_step(2, {}, np.ones(2), np.ones(2), {})
        with pytest.raises(ValueError, match="contiguous"):
            history.record_step(0, {}, np.ones(2), np.ones(2), {})
        history.record_step(1, {}, np.ones(2), np.ones(2), {})
        assert history.num_steps == 2

    def test_declared_num_users_is_enforced(self):
        history = AggregateHistory(num_users=3)
        with pytest.raises(ValueError):
            history.record_step(0, {}, np.ones(2), np.ones(2), {})

    def test_empty_history_raises(self):
        history = AggregateHistory()
        with pytest.raises(ValueError):
            history.num_users
        with pytest.raises(ValueError):
            history.approval_rates()
        assert history.num_steps == 0

    def test_full_history_accessors_raise_with_guidance(self):
        history = AggregateHistory()
        history.record_step(0, {}, np.ones(2), np.ones(2), {})
        for call in (
            history.decisions_matrix,
            history.actions_matrix,
            history.running_default_rates,
            history.running_action_averages,
            history.recompute_running_default_rates,
            history.recompute_running_action_averages,
            history.recompute_approval_rates,
        ):
            with pytest.raises(FullHistoryRequiredError, match="history_mode"):
                call()
        with pytest.raises(FullHistoryRequiredError):
            history.public_feature_matrix("income")
        with pytest.raises(FullHistoryRequiredError):
            history.observation_series("portfolio_rate")
        with pytest.raises(FullHistoryRequiredError):
            history.record_at(0)
        with pytest.raises(FullHistoryRequiredError):
            history.records
        with pytest.raises(FullHistoryRequiredError):
            history.group_series(np.ones((1, 2)), {})

    def test_pickles_cleanly(self):
        history = AggregateHistory(groups={"a": np.array([0])})
        history.record_step(0, {}, np.ones(2), np.ones(2), {})
        clone = pickle.loads(pickle.dumps(history))
        assert clone.num_steps == 1
        np.testing.assert_array_equal(
            clone.approval_rates(), history.approval_rates()
        )


class TestSequentialSumHelper:
    def test_empty_input_sums_to_zero(self):
        assert sequential_sum(np.array([])) == 0.0

    def test_single_element(self):
        assert sequential_sum(np.array([0.3])) == 0.3


class TestBatchedStreamingAggregator:
    """Every trial slice of the lockstep aggregator matches its standalone twin."""

    @staticmethod
    def _groups(num_users, seed, parts=3):
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, parts, size=num_users)
        return {f"g{j}": np.flatnonzero(assignment == j) for j in range(parts)}

    def _run_pair(self, trials=3, users=40, steps=7, seed=21):
        from repro.core.streaming import BatchedStreamingAggregator

        rng = np.random.default_rng(seed)
        groups = [self._groups(users, seed + t) for t in range(trials)]
        batched = BatchedStreamingAggregator(trials, users, groups, prior_rate=0.0)
        singles = [
            StreamingAggregator(users, groups=groups[t]) for t in range(trials)
        ]
        for _ in range(steps):
            decisions = rng.integers(0, 2, size=(trials, users)).astype(float)
            actions = rng.integers(0, 2, size=(trials, users)).astype(float) * decisions
            batched.update(decisions, actions)
            for t in range(trials):
                singles[t].update(decisions[t], actions[t])
        return batched, singles

    def test_every_series_matches_standalone(self):
        batched, singles = self._run_pair()
        for t, single in enumerate(singles):
            stacked = batched.aggregator(t)
            np.testing.assert_array_equal(
                stacked.approval_rate_series(), single.approval_rate_series()
            )
            np.testing.assert_array_equal(
                stacked.portfolio_rate_series(), single.portfolio_rate_series()
            )
            np.testing.assert_array_equal(
                stacked.rate_sum_series(), single.rate_sum_series()
            )
            np.testing.assert_array_equal(
                stacked.rate_sumsq_series(), single.rate_sumsq_series()
            )
            np.testing.assert_array_equal(
                stacked.rate_min_series(), single.rate_min_series()
            )
            np.testing.assert_array_equal(
                stacked.rate_max_series(), single.rate_max_series()
            )
            np.testing.assert_array_equal(
                stacked.rate_histogram_series(), single.rate_histogram_series()
            )
            np.testing.assert_array_equal(
                stacked.rate_low_count_series(), single.rate_low_count_series()
            )
            for key, series in single.group_default_rate_series().items():
                np.testing.assert_array_equal(
                    stacked.group_default_rate_series()[key], series
                )
            for key, series in single.group_action_average_series().items():
                np.testing.assert_array_equal(
                    stacked.group_action_average_series()[key], series
                )
            for key, series in single.group_approval_series().items():
                np.testing.assert_array_equal(
                    stacked.group_approval_series()[key], series
                )

    def test_extracted_aggregator_is_live(self):
        # The per-trial snapshot must keep aggregating like its twin.
        batched, singles = self._run_pair(trials=2, users=20, steps=3, seed=5)
        stacked = batched.aggregator(0)
        extra_decisions = np.ones(20)
        extra_actions = np.zeros(20)
        stacked.update(extra_decisions, extra_actions)
        singles[0].update(extra_decisions, extra_actions)
        np.testing.assert_array_equal(
            stacked.portfolio_rate_series(), singles[0].portfolio_rate_series()
        )

    def test_from_aggregator_history_surface(self):
        batched, singles = self._run_pair(trials=2, users=20, steps=4, seed=8)
        history = AggregateHistory.from_aggregator(batched.aggregator(1))
        assert history.num_steps == 4
        assert history.num_users == 20
        np.testing.assert_array_equal(
            history.approval_rates(), singles[1].approval_rate_series()
        )
        with pytest.raises(FullHistoryRequiredError):
            history.decisions_matrix()
        # Further ingest continues the wrapped aggregator.
        history.record_step(4, {}, np.ones(20), np.zeros(20), {})
        assert history.num_steps == 5

    def test_growth_beyond_initial_capacity(self):
        batched, singles = self._run_pair(trials=2, users=10, steps=40, seed=13)
        for t, single in enumerate(singles):
            np.testing.assert_array_equal(
                batched.aggregator(t).portfolio_rate_series(),
                single.portfolio_rate_series(),
            )

    def test_validation(self):
        from repro.core.streaming import BatchedStreamingAggregator

        with pytest.raises(ValueError):
            BatchedStreamingAggregator(0, 5, [])
        with pytest.raises(ValueError):
            BatchedStreamingAggregator(2, 5, [None])  # one partition per trial
        batched = BatchedStreamingAggregator(2, 5, [None, None])
        with pytest.raises(ValueError):
            batched.update(np.ones((2, 4)), np.ones((2, 4)))
        with pytest.raises(ValueError):
            batched.trial_state(2)
