"""Tests for repro.utils.stats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    cesaro_averages,
    gini_coefficient,
    max_pairwise_gap,
    running_mean,
    tail_dispersion,
    time_average,
)


class TestRunningMean:
    def test_matches_manual_computation(self):
        values = [1.0, 3.0, 5.0]
        np.testing.assert_allclose(running_mean(values), [1.0, 2.0, 3.0])

    def test_constant_series_is_unchanged(self):
        np.testing.assert_allclose(running_mean([2.0] * 10), [2.0] * 10)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            running_mean([])

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_last_entry_is_plain_mean(self, values):
        result = running_mean(values)
        assert result[-1] == pytest.approx(np.mean(values), abs=1e-9)


class TestCesaroAverages:
    def test_matrix_per_column(self):
        series = np.array([[0.0, 1.0], [2.0, 1.0], [4.0, 1.0]])
        result = cesaro_averages(series, axis=0)
        np.testing.assert_allclose(result[:, 0], [0.0, 1.0, 2.0])
        np.testing.assert_allclose(result[:, 1], [1.0, 1.0, 1.0])

    def test_axis_minus_one_default(self):
        series = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(cesaro_averages(series), [1.0, 1.5, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            cesaro_averages(np.array([]))

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_shape_is_preserved(self, rows, cols):
        series = np.ones((rows, cols))
        assert cesaro_averages(series, axis=0).shape == (rows, cols)


class TestTimeAverage:
    def test_simple_mean(self):
        assert time_average([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            time_average([])


class TestTailDispersion:
    def test_settled_series_has_small_dispersion(self):
        series = np.concatenate([np.linspace(1, 0.5, 50), np.full(50, 0.5)])
        assert tail_dispersion(series, 0.25) == pytest.approx(0.0, abs=1e-12)

    def test_oscillating_tail_has_positive_dispersion(self):
        series = np.tile([0.0, 1.0], 50)
        assert tail_dispersion(series, 0.5) > 0.4

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            tail_dispersion([1.0, 2.0], 0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            tail_dispersion([], 0.5)


class TestMaxPairwiseGap:
    def test_gap_of_constant_vector_is_zero(self):
        assert max_pairwise_gap([3.0, 3.0, 3.0]) == 0.0

    def test_gap_matches_max_minus_min(self):
        assert max_pairwise_gap([1.0, 5.0, 2.0]) == pytest.approx(4.0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_gap_is_non_negative(self, values):
        assert max_pairwise_gap(values) >= 0.0


class TestGiniCoefficient:
    def test_equal_values_give_zero(self):
        assert gini_coefficient([2.0, 2.0, 2.0, 2.0]) == pytest.approx(0.0, abs=1e-12)

    def test_concentration_gives_high_gini(self):
        assert gini_coefficient([0.0, 0.0, 0.0, 10.0]) > 0.7

    def test_all_zero_vector_gives_zero(self):
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1.0, 1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            gini_coefficient([])

    @given(st.lists(st.floats(0.0, 100.0), min_size=2, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_gini_is_between_zero_and_one(self, values):
        result = gini_coefficient(values)
        assert -1e-9 <= result <= 1.0
