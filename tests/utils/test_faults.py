"""Tests for repro.testing.faults: the deterministic fault-injection harness."""

from __future__ import annotations

import json
import os

import pytest

from repro.testing.faults import (
    FAULTS_ENV,
    FaultInjected,
    FaultSpec,
    clear_plan,
    fire,
    install_plan,
    plan_environment,
)


@pytest.fixture(autouse=True)
def _disarm():
    """Every test starts and ends with no plan armed anywhere."""
    clear_plan()
    saved = os.environ.pop(FAULTS_ENV, None)
    yield
    clear_plan()
    if saved is None:
        os.environ.pop(FAULTS_ENV, None)
    else:
        os.environ[FAULTS_ENV] = saved


class TestFaultSpec:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(site="loop_step", kind="explode")

    def test_negative_delay_is_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            FaultSpec(site="loop_step", kind="hang", delay=-1.0)

    def test_none_coordinates_are_wildcards(self):
        spec = FaultSpec(site="loop_step", kind="raise")
        assert spec.matches("loop_step", trial=3, shard=None, step=9)
        assert not spec.matches("trial_worker", trial=3, shard=None, step=9)

    def test_pinned_coordinates_must_agree(self):
        spec = FaultSpec(site="loop_step", kind="raise", step=5)
        assert spec.matches("loop_step", trial=None, shard=None, step=5)
        assert not spec.matches("loop_step", trial=None, shard=None, step=6)
        # A site that supplies no step cannot match a step-pinned spec.
        assert not spec.matches("loop_step", trial=None, shard=None, step=None)

    def test_identity_is_stable_and_distinct(self):
        a = FaultSpec(site="loop_step", kind="raise", step=5)
        b = FaultSpec(site="loop_step", kind="raise", step=6)
        assert a.identity() == FaultSpec(site="loop_step", kind="raise", step=5).identity()
        assert a.identity() != b.identity()


class TestFiring:
    def test_no_plan_is_a_no_op(self):
        fire("loop_step", step=3)

    def test_raise_kind_raises_fault_injected(self):
        install_plan([FaultSpec(site="loop_step", kind="raise", step=3)])
        fire("loop_step", step=2)  # wrong step: passes through
        with pytest.raises(FaultInjected, match="loop_step"):
            fire("loop_step", step=3)

    def test_once_fires_exactly_once_in_process(self):
        install_plan([FaultSpec(site="loop_step", kind="raise", step=3)])
        with pytest.raises(FaultInjected):
            fire("loop_step", step=3)
        fire("loop_step", step=3)  # claimed: the replay passes through

    def test_once_false_fires_every_time(self):
        install_plan([FaultSpec(site="loop_step", kind="raise", step=3, once=False)])
        for _ in range(3):
            with pytest.raises(FaultInjected):
                fire("loop_step", step=3)

    def test_once_claim_is_a_marker_file_with_state_dir(self, tmp_path):
        spec = FaultSpec(site="loop_step", kind="raise", step=3)
        install_plan([spec], state_dir=tmp_path)
        with pytest.raises(FaultInjected):
            fire("loop_step", step=3)
        assert (tmp_path / f"fired-{spec.identity()}").exists()
        # A *different* process replaying the coordinates would also pass:
        # simulate by clearing this process's plan cache and re-arming.
        clear_plan()
        install_plan([spec], state_dir=tmp_path)
        fire("loop_step", step=3)

    def test_hang_kind_sleeps_for_delay(self):
        # delay=0 keeps the test instant while exercising the sleep path.
        install_plan([FaultSpec(site="loop_step", kind="hang", step=1, delay=0.0)])
        fire("loop_step", step=1)

    def test_torn_write_truncates_the_target_file(self, tmp_path):
        target = tmp_path / "snapshot.ckpt"
        target.write_bytes(b"x" * 100)
        install_plan([FaultSpec(site="checkpoint_write", kind="torn_write")])
        fire("checkpoint_write", path=str(target))
        assert target.stat().st_size == 50

    def test_torn_write_without_a_path_is_an_error(self):
        install_plan([FaultSpec(site="loop_step", kind="torn_write")])
        with pytest.raises(ValueError, match="without a path"):
            fire("loop_step")


class TestEnvironmentChannel:
    def test_plan_environment_round_trips(self, tmp_path):
        mapping = plan_environment(
            [FaultSpec(site="trial_worker", kind="raise", trial=1)],
            state_dir=tmp_path,
        )
        assert set(mapping) == {FAULTS_ENV}
        document = json.loads(mapping[FAULTS_ENV])
        assert document["state_dir"] == str(tmp_path)
        os.environ.update(mapping)
        with pytest.raises(FaultInjected):
            fire("trial_worker", trial=1)

    def test_env_plan_is_recached_when_the_value_changes(self):
        os.environ.update(
            plan_environment([FaultSpec(site="loop_step", kind="raise", once=False)])
        )
        with pytest.raises(FaultInjected):
            fire("loop_step")
        os.environ.update(
            plan_environment([FaultSpec(site="trial_worker", kind="raise", once=False)])
        )
        fire("loop_step")  # old plan gone
        with pytest.raises(FaultInjected):
            fire("trial_worker")

    def test_malformed_env_plan_is_an_actionable_error(self):
        os.environ[FAULTS_ENV] = "{not json"
        with pytest.raises(ValueError, match=FAULTS_ENV):
            fire("loop_step")

    def test_local_plan_wins_over_environment(self):
        os.environ.update(
            plan_environment([FaultSpec(site="loop_step", kind="raise", once=False)])
        )
        install_plan([])
        fire("loop_step")  # env plan masked by the (empty) local plan
