"""Tests for repro.utils.validation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
    require_probability_vector,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("value", [0.0, -1.0, math.inf, math.nan])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError, match="x"):
            require_positive(value, "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0.0, "x") == 0.0

    @pytest.mark.parametrize("value", [-0.1, math.nan, -math.inf])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError):
            require_non_negative(value, "x")


class TestRequireProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert require_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, math.nan])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            require_probability(value, "p")


class TestRequireProbabilityVector:
    def test_accepts_and_normalises(self):
        vector = require_probability_vector([0.25, 0.75], "p")
        assert vector.sum() == pytest.approx(1.0)

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            require_probability_vector([0.2, 0.2], "p")

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            require_probability_vector([-0.5, 1.5], "p")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            require_probability_vector([], "p")

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            require_probability_vector(np.ones((2, 2)) / 4, "p")

    def test_returns_exact_unit_sum(self):
        vector = require_probability_vector([1 / 3, 1 / 3, 1 / 3], "p")
        assert float(vector.sum()) == pytest.approx(1.0, abs=1e-15)


class TestRequireInRange:
    def test_inclusive_bounds(self):
        assert require_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert require_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_bounds_reject_endpoints(self):
        with pytest.raises(ValueError):
            require_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            require_in_range(2.0, "x", 0.0, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            require_in_range(math.nan, "x", 0.0, 1.0)
