"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import derive_seed, spawn_generator, spawn_generators


class TestDeriveSeed:
    def test_is_deterministic(self):
        assert derive_seed(42, "trial", 3) == derive_seed(42, "trial", 3)

    def test_different_labels_give_different_seeds(self):
        assert derive_seed(42, "trial", 3) != derive_seed(42, "trial", 4)

    def test_different_parents_give_different_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_result_is_in_range(self):
        for label in range(50):
            seed = derive_seed(7, label)
            assert 0 <= seed < 2**63 - 1

    def test_accepts_arbitrary_label_types(self):
        assert isinstance(derive_seed(5, ("x", 1), 2.5, None), int)


class TestSpawnGenerator:
    def test_integer_seed_is_deterministic(self):
        a = spawn_generator(123).random(5)
        b = spawn_generator(123).random(5)
        np.testing.assert_array_equal(a, b)

    def test_existing_generator_is_passed_through(self):
        generator = np.random.default_rng(0)
        assert spawn_generator(generator) is generator

    def test_none_gives_a_generator(self):
        assert isinstance(spawn_generator(None), np.random.Generator)


class TestSpawnGenerators:
    def test_one_generator_per_label(self):
        generators = spawn_generators(7, range(4))
        assert len(generators) == 4

    def test_generators_are_independent_streams(self):
        first, second = spawn_generators(7, ["a", "b"])
        assert not np.allclose(first.random(10), second.random(10))

    def test_reproducible_across_calls(self):
        first_run = [g.random() for g in spawn_generators(7, range(3))]
        second_run = [g.random() for g in spawn_generators(7, range(3))]
        assert first_run == second_run
