"""Sanity checks on the public API surface.

These tests guard the package's importability and the consistency of every
``__all__`` list: each advertised name must actually exist, and the
top-level package must re-export the objects the README's quickstart uses.
"""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.markov",
    "repro.scoring",
    "repro.credit",
    "repro.data",
    "repro.baselines",
    "repro.control",
    "repro.experiments",
    "repro.utils",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_imports(package_name):
    module = importlib.import_module(package_name)
    assert module is not None


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_entries_resolve(package_name):
    module = importlib.import_module(package_name)
    assert hasattr(module, "__all__"), f"{package_name} must declare __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package_name}.__all__ lists missing name {name!r}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_entries_are_unique(package_name):
    module = importlib.import_module(package_name)
    assert len(module.__all__) == len(set(module.__all__))


def test_top_level_exports_cover_the_quickstart():
    import repro

    for name in [
        "ClosedLoop",
        "CreditPopulation",
        "CreditScoringSystem",
        "DefaultRateFilter",
        "CaseStudyConfig",
        "run_trial",
        "run_experiment",
        "equal_treatment_assessment",
        "equal_impact_assessment",
    ]:
        assert hasattr(repro, name)


def test_version_is_a_semver_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_public_functions_have_docstrings():
    """Every public callable re-exported by the top-level package is documented."""
    import repro

    for name in repro.__all__:
        if name.startswith("__"):
            continue
        member = getattr(repro, name)
        if callable(member):
            assert member.__doc__, f"repro.{name} is missing a docstring"
