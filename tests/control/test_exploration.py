"""Tests for repro.control.exploration (epsilon-greedy wrapper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.exploration import EpsilonGreedyPolicy
from repro.core.ai_system import AISystem, ConstantDecisionSystem


def observation_for(num_users: int):
    return {"user_default_rates": np.zeros(num_users), "portfolio_rate": 0.0}


class TestEpsilonGreedyPolicy:
    def test_satisfies_the_protocol(self):
        assert isinstance(EpsilonGreedyPolicy(ConstantDecisionSystem()), AISystem)

    def test_rejects_invalid_epsilon(self):
        with pytest.raises(ValueError):
            EpsilonGreedyPolicy(ConstantDecisionSystem(), epsilon=1.5)

    def test_epsilon_zero_never_changes_the_base_decisions(self):
        policy = EpsilonGreedyPolicy(ConstantDecisionSystem(decision=0), epsilon=0.0)
        decisions = policy.decide({"income": np.ones(50)}, observation_for(50), 0)
        np.testing.assert_array_equal(decisions, np.zeros(50))

    def test_epsilon_one_approves_everyone(self):
        policy = EpsilonGreedyPolicy(ConstantDecisionSystem(decision=0), epsilon=1.0)
        decisions = policy.decide({"income": np.ones(50)}, observation_for(50), 0)
        np.testing.assert_array_equal(decisions, np.ones(50))
        np.testing.assert_array_equal(policy.explored_last_round, np.ones(50))

    def test_approvals_are_never_flipped_to_denials(self):
        policy = EpsilonGreedyPolicy(ConstantDecisionSystem(decision=1), epsilon=0.9)
        decisions = policy.decide({"income": np.ones(50)}, observation_for(50), 0)
        np.testing.assert_array_equal(decisions, np.ones(50))
        assert policy.explored_last_round.sum() == 0

    def test_exploration_frequency_matches_epsilon(self):
        policy = EpsilonGreedyPolicy(ConstantDecisionSystem(decision=0), epsilon=0.25, seed=1)
        explored_counts = []
        for k in range(50):
            policy.decide({"income": np.ones(400)}, observation_for(400), k)
            explored_counts.append(policy.explored_last_round.mean())
        assert np.mean(explored_counts) == pytest.approx(0.25, abs=0.02)

    def test_update_is_delegated_to_the_base_policy(self):
        class RecordingSystem(ConstantDecisionSystem):
            def __init__(self):
                super().__init__(decision=0)
                self.updates = 0

            def update(self, public_features, decisions, actions, observation, k):
                self.updates += 1

        base = RecordingSystem()
        policy = EpsilonGreedyPolicy(base, epsilon=0.1)
        policy.update({"income": np.ones(3)}, np.ones(3), np.ones(3), observation_for(3), 0)
        assert base.updates == 1

    def test_base_policy_accessor(self):
        base = ConstantDecisionSystem()
        assert EpsilonGreedyPolicy(base).base_policy is base
