"""Tests for repro.control.steering (the equal-impact steering policy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.steering import ImpactSteeringPolicy
from repro.core.ai_system import AISystem, CreditScoringSystem
from repro.credit.lender import Lender
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_trial


def observation_for(rates):
    rates_array = np.asarray(rates, dtype=float)
    return {"user_default_rates": rates_array, "portfolio_rate": float(rates_array.mean())}


def trained_policy(gain: float, num_users: int = 200, seed: int = 0) -> ImpactSteeringPolicy:
    """Return a steering policy whose lender has been through one training round.

    The training round includes variation in the previous default rate, so
    the fitted card carries a clearly negative default-history weight and a
    user with a poor history is genuinely rejected by the unsteered card.
    """
    rng = np.random.default_rng(seed)
    policy = ImpactSteeringPolicy(gain=gain, lender=Lender(warm_up_rounds=1))
    incomes = rng.uniform(5.0, 120.0, num_users)
    previous_rates = rng.uniform(0.0, 0.9, num_users)
    observation = observation_for(previous_rates)
    decisions = policy.decide({"income": incomes}, observation, 0)  # warm-up
    actions = ((incomes > 20.0) & (previous_rates < 0.4)).astype(float)
    policy.update({"income": incomes}, decisions, actions, observation, 0)
    return policy


class TestImpactSteeringPolicy:
    def test_satisfies_the_protocol(self):
        assert isinstance(ImpactSteeringPolicy(), AISystem)

    def test_rejects_negative_gain(self):
        with pytest.raises(ValueError):
            ImpactSteeringPolicy(gain=-1.0)

    def test_zero_gain_matches_the_plain_scorecard(self):
        rng = np.random.default_rng(1)
        num_users = 200
        incomes = rng.uniform(5.0, 120.0, num_users)
        actions = (incomes > 20.0).astype(float)
        observation = observation_for(np.zeros(num_users))

        plain = CreditScoringSystem(Lender(warm_up_rounds=1))
        steered = ImpactSteeringPolicy(gain=0.0, lender=Lender(warm_up_rounds=1))
        for system in (plain, steered):
            decisions = system.decide({"income": incomes}, observation, 0)
            system.update({"income": incomes}, decisions, actions, observation, 0)
        next_observation = observation_for(1.0 - actions)
        np.testing.assert_array_equal(
            plain.decide({"income": incomes}, next_observation, 1),
            steered.decide({"income": incomes}, next_observation, 1),
        )

    def test_boost_targets_users_with_above_average_default_rates(self):
        policy = trained_policy(gain=10.0)
        num_users = 200
        incomes = np.full(num_users, 60.0)
        rates = np.zeros(num_users)
        rates[:20] = 0.9  # a minority with poor histories
        policy.decide({"income": incomes}, observation_for(rates), 1)
        boost = policy.last_boost
        assert boost is not None
        assert np.all(boost[:20] > 0)
        assert np.all(boost[20:] == 0)

    def test_high_gain_approves_users_the_plain_card_rejects(self):
        num_users = 200
        incomes = np.full(num_users, 60.0)
        rates = np.zeros(num_users)
        rates[:20] = 0.9

        plain = trained_policy(gain=0.0, seed=3)
        steered = trained_policy(gain=50.0, seed=3)
        plain_decisions = plain.decide({"income": incomes}, observation_for(rates), 1)
        steered_decisions = steered.decide({"income": incomes}, observation_for(rates), 1)
        assert steered_decisions[:20].sum() > plain_decisions[:20].sum()

    def test_warm_up_round_applies_no_boost(self):
        policy = ImpactSteeringPolicy(gain=10.0, lender=Lender(warm_up_rounds=1))
        decisions = policy.decide(
            {"income": np.array([10.0, 50.0])}, observation_for([0.0, 0.5]), 0
        )
        np.testing.assert_array_equal(decisions, [1.0, 1.0])
        np.testing.assert_array_equal(policy.last_boost, [0.0, 0.0])

    def test_steering_reduces_the_final_user_spread_in_the_loop(self):
        # The max-min spread of the quantized ADR values is noisy at small
        # populations (single users move it by 1/steps), so the assertion
        # runs at 400 users where the steering effect dominates the noise.
        config = CaseStudyConfig(num_users=400, num_trials=1, seed=17)
        plain = run_trial(config, trial_index=0)
        steered = run_trial(
            config,
            trial_index=0,
            policy_factory=lambda cfg, pop: ImpactSteeringPolicy(
                gain=5.0, lender=Lender(cutoff=cfg.cutoff, warm_up_rounds=cfg.warm_up_rounds)
            ),
        )
        plain_spread = plain.user_default_rates[-1].max() - plain.user_default_rates[-1].min()
        steered_spread = (
            steered.user_default_rates[-1].max() - steered.user_default_rates[-1].min()
        )
        assert steered_spread <= plain_spread + 1e-9
