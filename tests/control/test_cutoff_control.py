"""Tests for repro.control.cutoff_control (integral cut-off controller)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.cutoff_control import IntegralCutoffController
from repro.core.ai_system import AISystem
from repro.credit.lender import Lender
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_trial


def observation_for(rates):
    rates_array = np.asarray(rates, dtype=float)
    return {"user_default_rates": rates_array, "portfolio_rate": float(rates_array.mean())}


class TestConstruction:
    def test_satisfies_the_protocol(self):
        assert isinstance(IntegralCutoffController(), AISystem)

    def test_rejects_invalid_target(self):
        with pytest.raises(ValueError):
            IntegralCutoffController(target_approval_rate=1.5)

    def test_rejects_negative_gain(self):
        with pytest.raises(ValueError):
            IntegralCutoffController(gain=-0.5)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            IntegralCutoffController(cutoff_bounds=(5.0, -5.0))

    def test_initial_cutoff_matches_the_lender(self):
        controller = IntegralCutoffController(lender=Lender(cutoff=0.7))
        assert controller.cutoff == pytest.approx(0.7)


class TestAdaptation:
    def _one_round(self, controller, incomes, rates, actions, k):
        observation = observation_for(rates)
        decisions = controller.decide({"income": incomes}, observation, k)
        controller.update({"income": incomes}, decisions, actions, observation, k)
        return decisions

    def test_cutoff_rises_when_too_many_users_are_approved(self):
        rng = np.random.default_rng(0)
        num_users = 300
        incomes = rng.uniform(20.0, 120.0, num_users)  # everyone wealthy -> all approved
        actions = np.ones(num_users)
        controller = IntegralCutoffController(
            target_approval_rate=0.5, gain=1.0, lender=Lender(warm_up_rounds=1)
        )
        self._one_round(controller, incomes, np.zeros(num_users), actions, 0)  # warm-up
        cutoff_before = controller.cutoff
        self._one_round(controller, incomes, np.zeros(num_users), actions, 1)
        assert controller.cutoff > cutoff_before

    def test_cutoff_history_records_post_warm_up_rounds_only(self):
        rng = np.random.default_rng(1)
        num_users = 100
        incomes = rng.uniform(5.0, 100.0, num_users)
        actions = (incomes > 20.0).astype(float)
        controller = IntegralCutoffController(lender=Lender(warm_up_rounds=1))
        self._one_round(controller, incomes, np.zeros(num_users), actions, 0)
        assert controller.cutoff_history == []
        self._one_round(controller, incomes, 1.0 - actions, actions, 1)
        assert len(controller.cutoff_history) == 1

    def test_cutoff_respects_its_bounds(self):
        rng = np.random.default_rng(2)
        num_users = 100
        incomes = rng.uniform(50.0, 150.0, num_users)
        actions = np.ones(num_users)
        controller = IntegralCutoffController(
            target_approval_rate=0.0,
            gain=100.0,
            lender=Lender(warm_up_rounds=1),
            cutoff_bounds=(-1.0, 1.0),
        )
        for k in range(6):
            self._one_round(controller, incomes, np.zeros(num_users), actions, k)
        assert controller.cutoff <= 1.0

    def test_approval_rate_tracks_the_target_inside_the_loop(self):
        config = CaseStudyConfig(num_users=200, num_trials=1, seed=23)
        target = 0.6
        trial = run_trial(
            config,
            trial_index=0,
            policy_factory=lambda cfg, pop: IntegralCutoffController(
                target_approval_rate=target,
                gain=2.0,
                lender=Lender(cutoff=cfg.cutoff, warm_up_rounds=cfg.warm_up_rounds),
            ),
        )
        approvals = trial.history.approval_rates()
        # The integral action visibly restrains lending (the uncontrolled loop
        # approves ~97% of users) and the long-run average hovers around the
        # target; with near-discrete score distributions the tracking is
        # oscillatory rather than tight, so the tolerance is generous.
        post_transient = approvals[5:]
        assert float(np.mean(post_transient)) < 0.95
        assert float(np.mean(post_transient)) == pytest.approx(target, abs=0.25)
