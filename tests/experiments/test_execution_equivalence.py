"""Cross-layout differential suite: every ``execution`` mode, one stream.

The execution planner (:mod:`repro.core.planner`) composes the serial
loop, the trial-batched tensor engine, the trial process pool and the
shared-memory shard pool behind one knob.  Its contract is that the knob
is *purely* a wall-clock choice: whatever layout the planner picks — on
whatever machine — the trajectories are bit-identical to the serial
reference pinned by :data:`tests.experiments.harness.ENGINE_GOLDEN`.

This suite is the consolidated harness behind that claim:

* every ``execution`` mode reproduces the engine goldens, in both history
  modes (the CI execution-matrix job runs one mode per cell via
  ``REPRO_TEST_EXECUTION_MODE``; without it every mode runs);
* ``execution="auto"`` is bit-identical across *core counts* (the plan
  changes, the stream must not) — the property that makes the knob safe
  to bake into configs shared between laptops and CI runners;
* the config knob, the ``run_experiment`` override and ``run_trial``
  route through the same planner;
* forbidden combinations fail at configuration time with actionable
  errors, not at step 900 of a trial.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import planner
from repro.core.streaming import AggregateHistory
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_experiment, run_trial

from tests.experiments.harness import (
    ENGINE_GOLDEN,
    assert_experiments_identical,
    digest,
    execution_modes,
    expected_group_digests,
    experiment_digests,
    group_digests,
)

EXECUTIONS = execution_modes()


class TestExecutionModesMatchGoldens:
    """Each planner-chosen layout reproduces the pinned golden stream."""

    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_full_history_matches_engine_goldens(self, golden_config, execution):
        result = run_experiment(golden_config, execution=execution)
        assert experiment_digests(result) == ENGINE_GOLDEN

    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_aggregate_history_matches_group_goldens(self, golden_config, execution):
        result = run_experiment(
            golden_config, history_mode="aggregate", execution=execution
        )
        observed = {}
        expected = {}
        for index, trial in enumerate(result.trials):
            assert isinstance(trial.history, AggregateHistory)
            observed.update(group_digests(trial, index, portfolio=True))
            expected.update(expected_group_digests(index, portfolio=True))
        assert observed == expected

    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_run_trial_matches_trial0_goldens(self, golden_config, execution):
        if execution == "batch":
            pytest.skip("run_trial rejects the batch mode (covered below)")
        trial = run_trial(golden_config, trial_index=0, execution=execution)
        assert (
            digest(trial.history.decisions_matrix())
            == ENGINE_GOLDEN["trial0_decisions"]
        )
        assert digest(trial.history.actions_matrix()) == ENGINE_GOLDEN["trial0_actions"]
        assert digest(trial.user_default_rates) == ENGINE_GOLDEN["trial0_user_rates"]

    def test_compressed_retrain_composes_with_auto(
        self, golden_config, monkeypatch
    ):
        serial = run_experiment(golden_config, retrain_mode="compressed")
        monkeypatch.setattr(planner, "_detect_cpu_count", lambda: 4)
        auto = run_experiment(
            golden_config, retrain_mode="compressed", execution="auto"
        )
        assert_experiments_identical(serial, auto)


class TestAutoIsPureWallClock:
    """The auto plan varies with the host; the stream must not."""

    @pytest.mark.parametrize("cores", [1, 4, 16])
    def test_bit_identical_across_core_counts(
        self, golden_config, golden_serial_result, cores, monkeypatch
    ):
        monkeypatch.setattr(planner, "_detect_cpu_count", lambda: cores)
        result = run_experiment(golden_config, execution="auto")
        assert_experiments_identical(golden_serial_result, result)


class TestKnobPlumbing:
    """Config knob, runner override and shard hints hit the same planner."""

    def test_config_knob_routes_through_planner(
        self, golden_config, golden_serial_result
    ):
        config = replace(golden_config, execution="auto")
        assert_experiments_identical(golden_serial_result, run_experiment(config))

    def test_shard_hint_is_honoured_bit_identically(
        self, golden_config, golden_serial_result
    ):
        config = replace(golden_config, num_shards=4)
        result = run_experiment(config, execution="shard")
        assert_experiments_identical(golden_serial_result, result)

    def test_run_trial_shard_matches_experiment_shard(self, golden_config):
        trial = run_trial(golden_config, trial_index=0, execution="shard")
        assert np.array_equal(
            trial.user_default_rates,
            run_trial(golden_config, trial_index=0).user_default_rates,
        )


class TestForbiddenCombosFailAtConfigTime:
    """Bad knob combinations are rejected before any work starts."""

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="execution"):
            CaseStudyConfig(execution="turbo")

    @pytest.mark.parametrize(
        "legacy", [{"trial_batch": True}, {"parallel": True}, {"shard_parallel": True}]
    )
    def test_legacy_switches_are_rejected_with_execution(self, legacy):
        with pytest.raises(ValueError, match="legacy layout switches"):
            CaseStudyConfig(execution="auto", **legacy)

    def test_batch_mode_rejects_checkpointing(self, tmp_path):
        with pytest.raises(ValueError, match="incompatible with checkpointing"):
            CaseStudyConfig(
                execution="batch",
                checkpoint_dir=str(tmp_path),
                checkpoint_every=5,
            )

    def test_runner_override_rejects_legacy_overrides(self, golden_config):
        with pytest.raises(ValueError, match="parallel override"):
            run_experiment(golden_config, execution="auto", parallel=True)
        with pytest.raises(ValueError, match="trial_batch override"):
            run_experiment(golden_config, execution="serial", trial_batch=True)

    def test_run_trial_rejects_batch_mode(self, golden_config):
        with pytest.raises(ValueError, match="run_experiment"):
            run_trial(golden_config, trial_index=0, execution="batch")
