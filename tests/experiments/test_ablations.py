"""Tests for repro.experiments.ablations (E-A1 and E-A2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.census import Race
from repro.experiments.ablations import baseline_comparison, ergodicity_ablation
from repro.experiments.config import CaseStudyConfig


@pytest.fixture(scope="module")
def comparison():
    return baseline_comparison(CaseStudyConfig(num_users=150, num_trials=2, seed=5))


class TestBaselineComparison:
    def test_all_four_policies_are_compared(self, comparison):
        assert len(comparison.outcomes) == 4
        assert any("uniform" in name for name in comparison.outcomes)
        assert any("retraining" in name for name in comparison.outcomes)

    def test_final_gaps_are_non_negative(self, comparison):
        for outcome in comparison.outcomes.values():
            assert outcome.final_gap >= 0.0
            assert outcome.approval_gap >= 0.0

    def test_uniform_limit_does_not_equalise_impact(self, comparison):
        """The introduction's claim: the equal-treatment $50K limit leaves a
        larger long-run default-rate gap than the income-proportional loop."""
        uniform = comparison.outcomes["uniform $50K limit (equal treatment)"]
        paper = comparison.outcomes["retraining scorecard (paper)"]
        assert uniform.final_gap > paper.final_gap

    def test_equal_impact_ranking_prefers_the_paper_policy_over_uniform(self, comparison):
        ranking = comparison.equal_impact_ranking()
        assert ranking.index("retraining scorecard (paper)") < ranking.index(
            "uniform $50K limit (equal treatment)"
        )

    def test_every_outcome_reports_all_races(self, comparison):
        for outcome in comparison.outcomes.values():
            assert set(outcome.final_group_rates) == set(Race)
            assert set(outcome.approval_rates) == set(Race)

    def test_summary_is_a_table_over_policies(self, comparison):
        text = comparison.summary()
        for name in comparison.outcomes:
            assert name in text


class TestErgodicityAblation:
    def test_contractive_ifs_is_uniquely_ergodic(self):
        result = ergodicity_ablation(orbit_length=1500, seed=3)
        assert result.contractive_is_ergodic
        assert result.contractive_max_distance < result.tolerance

    def test_integral_action_breaks_ergodicity(self):
        result = ergodicity_ablation(orbit_length=1500, seed=3)
        assert result.integral_breaks_ergodicity
        assert result.integral_divergence > result.contractive_max_distance

    def test_summary_mentions_both_cases(self):
        result = ergodicity_ablation(orbit_length=800, seed=1)
        text = result.summary()
        assert "contractive" in text
        assert "integral" in text
