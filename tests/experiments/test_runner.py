"""Tests for repro.experiments.runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import UniformLimitPolicy
from repro.credit.mortgage import MortgageTerms
from repro.data.census import Race
from repro.experiments.runner import ExperimentResult, run_experiment, run_trial


class TestRunTrial:
    def test_trial_shapes(self, small_config):
        trial = run_trial(small_config, trial_index=0)
        assert trial.user_default_rates.shape == (small_config.num_steps, small_config.num_users)
        assert trial.races.shape == (small_config.num_users,)
        assert trial.years == small_config.years
        for race in Race:
            assert trial.group_default_rates[race].shape == (small_config.num_steps,)

    def test_trials_are_reproducible(self, tiny_config):
        first = run_trial(tiny_config, trial_index=0)
        second = run_trial(tiny_config, trial_index=0)
        np.testing.assert_array_equal(first.user_default_rates, second.user_default_rates)

    def test_different_trials_differ(self, tiny_config):
        first = run_trial(tiny_config, trial_index=0)
        second = run_trial(tiny_config, trial_index=1)
        assert not np.array_equal(first.user_default_rates, second.user_default_rates)

    def test_default_rates_are_probabilities(self, tiny_config):
        trial = run_trial(tiny_config, trial_index=0)
        assert trial.user_default_rates.min() >= 0.0
        assert trial.user_default_rates.max() <= 1.0

    def test_custom_policy_factory_is_used(self, tiny_config):
        trial = run_trial(
            tiny_config,
            trial_index=0,
            policy_factory=lambda cfg, pop: UniformLimitPolicy(),
        )
        decisions = trial.history.decisions_matrix()
        # The uniform policy approves everyone at step 0 (no history yet).
        np.testing.assert_array_equal(decisions[0], np.ones(tiny_config.num_users))

    def test_custom_mortgage_terms_change_the_outcome(self, tiny_config):
        proportional = run_trial(tiny_config, trial_index=0)
        punitive = run_trial(
            tiny_config,
            trial_index=0,
            terms=MortgageTerms(fixed_principal=500.0, living_cost=10.0),
        )
        # A fixed $500K loan makes interest unaffordable for most users, so
        # defaults must be (weakly) more common than with 3.5x-income loans.
        assert punitive.user_default_rates[-1].mean() > proportional.user_default_rates[-1].mean()

    def test_final_group_gap_is_non_negative(self, tiny_config):
        trial = run_trial(tiny_config, trial_index=0)
        assert trial.final_group_gap >= 0.0


class TestRunExperiment:
    def test_experiment_has_one_result_per_trial(self, small_config):
        result = run_experiment(small_config)
        assert len(result.trials) == small_config.num_trials
        assert result.config is small_config

    def test_group_mean_and_std_series_shapes(self, small_config):
        result = run_experiment(small_config)
        means = result.group_mean_series()
        stds = result.group_std_series()
        for race in Race:
            assert means[race].shape == (small_config.num_steps,)
            assert stds[race].shape == (small_config.num_steps,)
            assert np.all(stds[race] >= 0.0)

    def test_stacked_user_series_shape(self, small_config):
        result = run_experiment(small_config)
        stacked = result.stacked_user_series()
        expected_rows = small_config.num_trials * small_config.num_users
        assert stacked.shape == (expected_rows, small_config.num_steps)
        assert result.stacked_user_races().shape == (expected_rows,)

    def test_experiment_is_reproducible(self, tiny_config):
        first = run_experiment(tiny_config)
        second = run_experiment(tiny_config)
        np.testing.assert_array_equal(
            first.stacked_user_series(), second.stacked_user_series()
        )


class TestGroupSeriesMoments:
    """Across-trial group statistics stream online (Welford) per trial."""

    def test_moments_match_batch_statistics(self, small_config):
        from repro.data.census import Race

        result = run_experiment(small_config)
        assert result.group_moments is not None
        assert result.group_moments.num_trials == small_config.num_trials
        batch_mean = result.group_mean_series()
        batch_std = result.group_std_series()
        online_mean = result.group_moments.mean_series()
        online_std = result.group_moments.std_series()
        for race in Race:
            np.testing.assert_allclose(
                batch_mean[race], online_mean[race], rtol=1e-12, atol=1e-15
            )
            np.testing.assert_allclose(
                batch_std[race], online_std[race], rtol=1e-9, atol=1e-12
            )

    def test_keep_trials_false_drops_series_but_keeps_statistics(
        self, small_config
    ):
        from repro.data.census import Race

        full = run_experiment(small_config)
        slim = run_experiment(small_config, keep_trials=False)
        assert slim.trials == ()
        assert slim.history_mode == small_config.history_mode
        for race in Race:
            np.testing.assert_allclose(
                full.group_mean_series()[race],
                slim.group_mean_series()[race],
                rtol=1e-12,
                atol=1e-15,
            )
        with pytest.raises(ValueError):
            ExperimentResult(config=small_config, trials=()).group_mean_series()

    def test_fig3_runs_from_a_trial_free_experiment(self, small_config):
        from repro.experiments.fig3_race_adr import fig3_race_adr

        slim = run_experiment(small_config, keep_trials=False)
        figure = fig3_race_adr(result=slim)
        assert figure.years == small_config.years
        assert np.isfinite(figure.final_gap)

    def test_moments_update_requires_trials(self):
        from repro.experiments.runner import GroupSeriesMoments

        moments = GroupSeriesMoments()
        with pytest.raises(ValueError):
            moments.mean_series()

    def test_keep_trials_false_keeps_the_resolved_history_mode(self, small_config):
        slim = run_experiment(
            small_config, history_mode="aggregate", keep_trials=False
        )
        assert slim.history_mode == "aggregate"

    def test_fig4_rejects_trial_free_experiments(self, small_config):
        from repro.experiments.fig4_user_adr import fig4_user_adr

        slim = run_experiment(
            small_config, history_mode="aggregate", keep_trials=False
        )
        with pytest.raises(ValueError, match="keep_trials=True"):
            fig4_user_adr(result=slim)
