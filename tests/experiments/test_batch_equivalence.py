"""Equivalence suite: the trial-batched engine against the pinned stream.

The trial-batched engine (:mod:`repro.experiments.batch`) runs all of an
experiment's trials in lockstep through ``(trials, users)`` tensors.  Its
contract is that every batched trial row is **bit-identical** to its serial
:func:`~repro.experiments.runner.run_trial` twin:

* at 200 users the batched experiment must reproduce the same golden
  SHA-256 digests as the serial engine
  (:data:`tests.experiments.harness.ENGINE_GOLDEN` — one set of hashes
  pinning four engine generations);
* at paper scale (1000 users, 5 trials) batched and serial runs must agree
  array-for-array across every ``history_mode`` × ``retrain_mode`` cell;
* the fused fast paths (stacked decide/retrain for the default stack) and
  the generic per-trial fallback (custom policy factories) must both hold
  the contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ai_system import CreditScoringSystem
from repro.core.history import FullHistoryRequiredError
from repro.credit.lender import Lender
from repro.data.census import Race
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_experiment, run_trial

from tests.experiments.harness import (
    ENGINE_GOLDEN,
    assert_full_trials_identical as _assert_full_trials_identical,
    assert_group_series_identical as _assert_group_series_identical,
    experiment_digests,
)


@pytest.fixture(scope="module")
def small_config(golden_config) -> CaseStudyConfig:
    return golden_config


@pytest.fixture(scope="module")
def paper_config() -> CaseStudyConfig:
    return CaseStudyConfig()  # 1000 users, 5 trials — the paper's scale


class TestBatchedEngineGoldens:
    """The batched engine reproduces the pinned golden stream exactly."""

    def test_batched_experiment_matches_engine_goldens(self, small_config):
        result = run_experiment(small_config, trial_batch=True)
        assert experiment_digests(result) == ENGINE_GOLDEN

    def test_batched_incremental_metrics_match_recompute(self, small_config):
        # The precomputed-statistics ingest rows must satisfy the history's
        # own cross-check recomputations bit for bit.
        result = run_experiment(small_config, trial_batch=True)
        for trial in result.trials:
            history = trial.history
            assert np.array_equal(
                history.running_default_rates(),
                history.recompute_running_default_rates(),
            )
            assert np.array_equal(
                history.running_action_averages(),
                history.recompute_running_action_averages(),
            )
            assert np.array_equal(
                history.approval_rates(), history.recompute_approval_rates()
            )


class TestBatchedMatchesSerialAcrossModes:
    """Paper scale, every history_mode x retrain_mode cell, bit for bit."""

    @pytest.mark.parametrize("retrain_mode", ["exact", "compressed"])
    def test_full_mode(self, paper_config, retrain_mode):
        serial = run_experiment(paper_config, retrain_mode=retrain_mode)
        batched = run_experiment(
            paper_config, retrain_mode=retrain_mode, trial_batch=True
        )
        assert len(serial.trials) == len(batched.trials) == paper_config.num_trials
        for serial_trial, batched_trial in zip(serial.trials, batched.trials):
            _assert_full_trials_identical(serial_trial, batched_trial)
            _assert_group_series_identical(serial_trial, batched_trial)

    @pytest.mark.parametrize("retrain_mode", ["exact", "compressed"])
    def test_aggregate_mode(self, paper_config, retrain_mode):
        serial = run_experiment(
            paper_config, history_mode="aggregate", retrain_mode=retrain_mode
        )
        batched = run_experiment(
            paper_config,
            history_mode="aggregate",
            retrain_mode=retrain_mode,
            trial_batch=True,
        )
        for serial_trial, batched_trial in zip(serial.trials, batched.trials):
            _assert_group_series_identical(serial_trial, batched_trial)
            assert np.array_equal(
                serial_trial.history.portfolio_rate_series(),
                batched_trial.history.portfolio_rate_series(),
            )
            assert np.array_equal(
                serial_trial.history.rate_histogram_series(),
                batched_trial.history.rate_histogram_series(),
            )
            assert np.array_equal(
                serial_trial.history.rate_low_count_series(),
                batched_trial.history.rate_low_count_series(),
            )
            with pytest.raises(FullHistoryRequiredError):
                batched_trial.history.decisions_matrix()

    def test_warm_start_cell(self, small_config):
        serial = run_experiment(
            small_config, retrain_mode="compressed", warm_start=True
        )
        batched = run_experiment(
            small_config, retrain_mode="compressed", warm_start=True, trial_batch=True
        )
        for serial_trial, batched_trial in zip(serial.trials, batched.trials):
            _assert_full_trials_identical(serial_trial, batched_trial)


class TestBatchedRunnerSurface:
    """Knob plumbing and the generic (non-default-stack) fallback."""

    def test_custom_policy_factory_takes_generic_path(self, small_config):
        # A subclass breaks the exact-type fast-path check, sending the run
        # down the per-trial decide/update calls — still bit-identical.
        class LoggingLender(Lender):
            pass

        def factory(config, population):
            return CreditScoringSystem(
                LoggingLender(
                    cutoff=config.cutoff, warm_up_rounds=config.warm_up_rounds
                )
            )

        serial = run_experiment(small_config, policy_factory=factory)
        batched = run_experiment(
            small_config, policy_factory=factory, trial_batch=True
        )
        for serial_trial, batched_trial in zip(serial.trials, batched.trials):
            _assert_full_trials_identical(serial_trial, batched_trial)
        # The subclassed lender behaves like the default one, so the run
        # must also equal the fast-path batched result.
        fast = run_experiment(small_config, trial_batch=True)
        for fast_trial, batched_trial in zip(fast.trials, batched.trials):
            _assert_full_trials_identical(fast_trial, batched_trial)

    def test_config_knob_enables_batching(self, small_config):
        config = CaseStudyConfig(
            num_users=small_config.num_users,
            num_trials=small_config.num_trials,
            trial_batch=True,
        )
        batched = run_experiment(config)
        serial = run_experiment(small_config)
        for serial_trial, batched_trial in zip(serial.trials, batched.trials):
            assert np.array_equal(
                serial_trial.user_default_rates, batched_trial.user_default_rates
            )

    def test_trial_batch_takes_precedence_over_parallel(self, small_config):
        result = run_experiment(
            small_config, trial_batch=True, parallel=True, max_workers=2
        )
        serial = run_experiment(small_config)
        for serial_trial, batched_trial in zip(serial.trials, result.trials):
            assert np.array_equal(
                serial_trial.user_default_rates, batched_trial.user_default_rates
            )

    def test_single_trial_batch(self):
        config = CaseStudyConfig(num_users=100, num_trials=1)
        batched = run_experiment(config, trial_batch=True)
        reference = run_trial(config, trial_index=0)
        assert np.array_equal(
            batched.trials[0].user_default_rates, reference.user_default_rates
        )

    def test_keep_trials_false_accumulates_moments(self, small_config):
        kept = run_experiment(small_config, trial_batch=True)
        dropped = run_experiment(small_config, trial_batch=True, keep_trials=False)
        assert dropped.trials == ()
        for race in Race:
            # Welford vs batch mean: equal up to float reassociation.
            assert np.allclose(
                kept.group_mean_series()[race],
                dropped.group_mean_series()[race],
                rtol=0.0,
                atol=1e-12,
            )
        assert np.allclose(
            np.concatenate([kept.group_std_series()[race] for race in Race]),
            np.concatenate([dropped.group_std_series()[race] for race in Race]),
        )

    def test_invalid_history_mode_is_rejected(self, small_config):
        with pytest.raises(ValueError):
            run_experiment(small_config, trial_batch=True, history_mode="bogus")

    def test_non_binary_decisions_are_rejected_loudly(self):
        # The serial filter truncates fractional decisions before counting
        # offers; rather than silently diverging from that corner, the
        # batched engine refuses non-binary policies outright.
        class FractionalSystem:
            def decide(self, public_features, observation, k):
                return np.full(public_features["income"].shape[0], 0.7)

            def update(self, public_features, decisions, actions, observation, k):
                return None

        config = CaseStudyConfig(num_users=40, num_trials=2)
        with pytest.raises(ValueError, match="0/1 decisions"):
            run_experiment(
                config,
                policy_factory=lambda cfg, population: FractionalSystem(),
                trial_batch=True,
            )
