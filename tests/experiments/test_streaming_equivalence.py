"""Cross-mode equivalence suite: streaming aggregation vs. full history.

``history_mode="aggregate"`` exists so million-user trials fit in memory,
but the reproduction guarantee must survive the refactor: every group-level
series the paper's figures consume has to be *bit-identical* to the
full-history path.  This suite pins that claim at two scales:

* the small scale of ``test_engine_equivalence.py`` (200 users, 2 trials),
  where the aggregate-mode group series must also reproduce the sharded
  engine's golden SHA-256 digests (``ENGINE_GOLDEN`` — extended here to
  the streaming path, so full, aggregate and sharded execution pin to one
  set of hashes);
* the paper scale (1000 users, 5 trials) of Figures 3-5 — including the
  fig5 density, which aggregate mode now reconstructs bit-identically from
  the streaming per-step rate histograms.

Also covered: the figure drivers end-to-end in aggregate mode, the clear
``FullHistoryRequiredError`` surface for per-user accessors, parallel
execution in aggregate mode, and chunked aggregate runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.history import FullHistoryRequiredError
from repro.core.streaming import AggregateHistory
from repro.data.census import Race
from repro.experiments.config import CaseStudyConfig
from repro.experiments.fig3_race_adr import fig3_race_adr
from repro.experiments.fig4_user_adr import fig4_user_adr
from repro.experiments.fig5_density import fig5_density
from repro.experiments.runner import run_experiment, run_trial

from tests.experiments.harness import expected_group_digests, group_digests


@pytest.fixture(scope="module")
def small_config(golden_config) -> CaseStudyConfig:
    return golden_config

@pytest.fixture(scope="module")
def paper_config() -> CaseStudyConfig:
    return CaseStudyConfig()


@pytest.fixture(scope="module")
def full_small(golden_serial_result):
    return golden_serial_result


@pytest.fixture(scope="module")
def aggregate_small(small_config):
    return run_experiment(small_config, history_mode="aggregate")


@pytest.fixture(scope="module")
def full_paper(paper_config):
    return run_experiment(paper_config)


@pytest.fixture(scope="module")
def aggregate_paper(paper_config):
    return run_experiment(paper_config, history_mode="aggregate")


def assert_group_series_bit_identical(full_experiment, aggregate_experiment):
    """Assert every group-level series agrees bit for bit across modes."""
    assert len(full_experiment.trials) == len(aggregate_experiment.trials)
    for full_trial, aggregate_trial in zip(
        full_experiment.trials, aggregate_experiment.trials
    ):
        assert aggregate_trial.history_mode == "aggregate"
        assert isinstance(aggregate_trial.history, AggregateHistory)
        for race in Race:
            assert np.array_equal(
                full_trial.group_default_rates[race],
                aggregate_trial.group_default_rates[race],
            )
        assert np.array_equal(
            full_trial.approval_rate_series(), aggregate_trial.approval_rate_series()
        )
        assert np.array_equal(
            full_trial.history.observation_series("portfolio_rate"),
            aggregate_trial.history.portfolio_rate_series(),
        )
        full_actions = full_trial.group_action_averages()
        aggregate_actions = aggregate_trial.group_action_averages()
        full_approvals = full_trial.group_approval_series()
        aggregate_approvals = aggregate_trial.group_approval_series()
        for race in Race:
            assert np.array_equal(full_actions[race], aggregate_actions[race])
            assert np.array_equal(full_approvals[race], aggregate_approvals[race])
        assert np.array_equal(full_trial.races, aggregate_trial.races)


class TestSmallScaleEquivalence:
    """200 users x 2 trials: the scale of the seed golden digests."""

    def test_group_series_bit_identical(self, full_small, aggregate_small):
        assert_group_series_bit_identical(full_small, aggregate_small)

    def test_aggregate_mode_reproduces_engine_goldens(self, aggregate_small):
        """The streaming group series hash to the engine's pinned goldens.

        ``ENGINE_GOLDEN`` pins the sharded full-history engine; asserting
        the same digests against the streaming path extends the pin across
        both recording modes (and, via ``test_shard_equivalence.py``, every
        pooled execution layout).
        """
        observed = {}
        expected = {}
        for index, trial in enumerate(aggregate_small.trials):
            observed.update(group_digests(trial, index, portfolio=True))
            expected.update(expected_group_digests(index, portfolio=True))
        assert observed == expected

    def test_aggregate_approvals_match_full_history(self, full_small, aggregate_small):
        for full_trial, aggregate_trial in zip(
            full_small.trials, aggregate_small.trials
        ):
            assert np.array_equal(
                full_trial.history.approval_rates(),
                aggregate_trial.history.approval_rates(),
            )


class TestPaperScaleEquivalence:
    """1000 users x 5 trials: the configuration behind Figures 3-5."""

    def test_group_series_bit_identical(self, full_paper, aggregate_paper):
        assert_group_series_bit_identical(full_paper, aggregate_paper)

    def test_fig3_bit_identical(self, full_paper, aggregate_paper):
        full_figure = fig3_race_adr(result=full_paper)
        aggregate_figure = fig3_race_adr(result=aggregate_paper)
        assert full_figure.years == aggregate_figure.years
        for race in Race:
            assert np.array_equal(
                full_figure.mean_series[race], aggregate_figure.mean_series[race]
            )
            assert np.array_equal(
                full_figure.std_series[race], aggregate_figure.std_series[race]
            )
        assert full_figure.initial_gap == aggregate_figure.initial_gap
        assert full_figure.final_gap == aggregate_figure.final_gap

    def test_fig4_group_series_and_spreads_bit_identical(
        self, full_paper, aggregate_paper
    ):
        full_figure = fig4_user_adr(result=full_paper)
        aggregate_figure = fig4_user_adr(result=aggregate_paper)
        assert full_figure.num_series == aggregate_figure.num_series
        for race in Race:
            assert np.array_equal(
                full_figure.group_mean_series[race],
                aggregate_figure.group_mean_series[race],
            )
        # max/min pool exactly across trials, so the spreads are bit-equal.
        assert full_figure.initial_spread == aggregate_figure.initial_spread
        assert full_figure.final_spread == aggregate_figure.final_spread
        # The pooled std uses the one-pass moment formula in aggregate mode:
        # equal to reassociation error, not bit-equal.
        np.testing.assert_allclose(
            full_figure.dispersion_series,
            aggregate_figure.dispersion_series,
            rtol=1e-9,
            atol=1e-12,
        )
        np.testing.assert_allclose(
            full_figure.mean_series, aggregate_figure.mean_series, rtol=1e-12
        )
        assert aggregate_figure.user_series is None
        assert aggregate_figure.user_races is None
        assert "cross-user spread" in aggregate_figure.summary()


class TestAggregateModeSurface:
    """Aggregate mode fails loudly where per-user rows would be needed."""

    def test_per_user_accessors_raise(self, aggregate_small):
        trial = aggregate_small.trials[0]
        assert trial.user_default_rates is None
        with pytest.raises(FullHistoryRequiredError):
            trial.history.decisions_matrix()
        with pytest.raises(FullHistoryRequiredError):
            trial.history.actions_matrix()
        with pytest.raises(FullHistoryRequiredError):
            trial.history.running_default_rates()
        with pytest.raises(FullHistoryRequiredError):
            trial.history.public_feature_matrix("income")
        with pytest.raises(FullHistoryRequiredError):
            trial.history.observation_series("user_default_rates")
        with pytest.raises(FullHistoryRequiredError):
            trial.require_user_default_rates()

    def test_stacked_user_series_raises(self, aggregate_small):
        with pytest.raises(FullHistoryRequiredError):
            aggregate_small.stacked_user_series()

    def test_fig5_bit_identical_across_modes(self, full_small, aggregate_small):
        """fig5 now runs in aggregate mode: pooled integer histograms.

        Counts are integers, so the streamed density equals the
        full-history histogram of the concatenated user stack bit for bit.
        """
        full_figure = fig5_density(result=full_small)
        aggregate_figure = fig5_density(result=aggregate_small)
        assert np.array_equal(full_figure.bin_edges, aggregate_figure.bin_edges)
        assert np.array_equal(full_figure.density, aggregate_figure.density)
        assert np.array_equal(
            full_figure.modal_bin_centers, aggregate_figure.modal_bin_centers
        )
        assert np.array_equal(
            full_figure.mass_below_010, aggregate_figure.mass_below_010
        )

    def test_fig5_aggregate_rejects_mismatched_binning(self, aggregate_small):
        with pytest.raises(ValueError, match="rate histograms"):
            fig5_density(result=aggregate_small, num_bins=33)

    def test_error_message_names_the_knob(self, aggregate_small):
        with pytest.raises(FullHistoryRequiredError, match='history_mode="full"'):
            aggregate_small.trials[0].history.decisions_matrix()

    def test_history_mode_is_reported(self, full_small, aggregate_small):
        assert full_small.history_mode == "full"
        assert aggregate_small.history_mode == "aggregate"
        assert full_small.trials[0].history_mode == "full"

    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            CaseStudyConfig(history_mode="columnar")
        with pytest.raises(ValueError):
            run_trial(CaseStudyConfig(num_users=10), history_mode="nope")


class TestAggregateParallelAndChunked:
    """Scheduling and chunking do not perturb the streaming series."""

    def test_parallel_aggregate_matches_serial(self, small_config, aggregate_small):
        parallel = run_experiment(
            small_config, history_mode="aggregate", parallel=True, max_workers=2
        )
        for serial_trial, parallel_trial in zip(
            aggregate_small.trials, parallel.trials
        ):
            for race in Race:
                assert np.array_equal(
                    serial_trial.group_default_rates[race],
                    parallel_trial.group_default_rates[race],
                )
            assert np.array_equal(
                serial_trial.approval_rate_series(),
                parallel_trial.approval_rate_series(),
            )

    def test_chunked_aggregate_run_matches_single_run(self):
        from repro.core.ai_system import CreditScoringSystem
        from repro.core.filters import DefaultRateFilter
        from repro.core.loop import ClosedLoop
        from repro.core.population import CreditPopulation
        from repro.credit.lender import Lender
        from repro.data.synthetic import PopulationSpec, generate_population

        def build_loop(seed: int) -> ClosedLoop:
            rng = np.random.default_rng(seed)
            population = CreditPopulation(
                population=generate_population(PopulationSpec(size=50), rng)
            )
            return ClosedLoop(
                ai_system=CreditScoringSystem(Lender(warm_up_rounds=2)),
                population=population,
                loop_filter=DefaultRateFilter(num_users=50),
            )

        groups = {"even": np.arange(0, 50, 2), "odd": np.arange(1, 50, 2)}
        rng_whole = np.random.default_rng(77)
        whole = build_loop(1).run(
            10, rng=rng_whole, history_mode="aggregate", groups=groups
        )

        rng_chunks = np.random.default_rng(77)
        loop = build_loop(1)
        history = loop.run(4, rng=rng_chunks, history_mode="aggregate", groups=groups)
        history = loop.run(6, history=history)

        assert history.num_steps == whole.num_steps == 10
        assert np.array_equal(whole.approval_rates(), history.approval_rates())
        for key in groups:
            assert np.array_equal(
                whole.group_default_rate_series()[key],
                history.group_default_rate_series()[key],
            )
