"""Tests for the figure/table reproduction modules (E-T1, E-F2..E-F5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.census import Race
from repro.experiments.fig2_income import fig2_income_distribution
from repro.experiments.fig3_race_adr import fig3_race_adr
from repro.experiments.fig4_user_adr import fig4_user_adr
from repro.experiments.fig5_density import fig5_density
from repro.experiments.runner import run_experiment
from repro.experiments.table1_scorecard import table1_scorecard_result


@pytest.fixture(scope="module")
def shared_experiment():
    """One small experiment shared by all figure tests in this module."""
    from repro.experiments.config import CaseStudyConfig

    return run_experiment(CaseStudyConfig(num_users=120, num_trials=2, seed=11))


class TestTable1:
    def test_worked_example_score_matches_the_paper(self):
        result = table1_scorecard_result(train=False)
        assert result.worked_example_score == pytest.approx(4.953, abs=1e-9)
        assert result.trained_scorecard is None

    def test_trained_scorecard_income_dominates_like_the_paper(self, tiny_config):
        # The robust, seed-stable part of Table I's shape: income carries
        # large positive points.  The trained *history* points hover near
        # zero with a seed-dependent sign (the pooled labels count
        # unoffered users as non-repaying, diluting the history signal), so
        # only their magnitude relative to income is asserted.
        result = table1_scorecard_result(tiny_config.scaled(num_users=300))
        assert result.trained_scorecard is not None
        assert result.trained_income_points > 0
        assert abs(result.trained_history_points) < result.trained_income_points

    def test_summary_mentions_both_cards(self, tiny_config):
        result = table1_scorecard_result(tiny_config.scaled(num_users=200))
        text = result.summary()
        assert "Table I" in text
        assert "trained" in text


class TestFig2:
    def test_shares_are_probability_vectors(self):
        result = fig2_income_distribution()
        for race in Race:
            assert result.shares[race].sum() == pytest.approx(1.0)

    def test_asian_top_bracket_share_is_about_20_percent(self):
        result = fig2_income_distribution()
        assert result.share_over_200k[Race.ASIAN] == pytest.approx(0.20, abs=0.06)

    def test_black_households_mostly_below_75k(self):
        result = fig2_income_distribution()
        assert result.share_under_75k[Race.BLACK] > 0.5

    def test_race_ordering_of_the_upper_tail(self):
        result = fig2_income_distribution()
        assert (
            result.share_over_200k[Race.ASIAN]
            > result.share_over_200k[Race.WHITE]
            > result.share_over_200k[Race.BLACK]
        )

    def test_summary_contains_every_bracket_label(self):
        result = fig2_income_distribution()
        text = result.summary()
        for label in result.bracket_labels:
            assert label in text


class TestFig3:
    def test_series_cover_every_year_and_race(self, shared_experiment):
        result = fig3_race_adr(result=shared_experiment)
        assert result.years == shared_experiment.years
        for race in Race:
            assert result.mean_series[race].shape == (len(result.years),)
            assert result.std_series[race].shape == (len(result.years),)

    def test_black_households_start_with_the_highest_adr(self, shared_experiment):
        result = fig3_race_adr(result=shared_experiment)
        warm_up = shared_experiment.config.warm_up_rounds
        assert (
            result.mean_series[Race.BLACK][warm_up]
            > result.mean_series[Race.ASIAN][warm_up]
        )

    def test_race_wise_adrs_dwindle_towards_a_common_level(self, shared_experiment):
        result = fig3_race_adr(result=shared_experiment)
        assert result.final_gap <= result.initial_gap
        assert result.gap_shrinks

    def test_adr_levels_are_small_by_the_end(self, shared_experiment):
        result = fig3_race_adr(result=shared_experiment)
        for race in Race:
            assert result.mean_series[race][-1] < 0.15

    def test_summary_is_a_table_over_years(self, shared_experiment):
        result = fig3_race_adr(result=shared_experiment)
        text = result.summary()
        assert "2002" in text and "2020" in text
        assert "cross-race ADR gap" in text


class TestFig4:
    def test_stacks_every_user_series(self, shared_experiment):
        result = fig4_user_adr(result=shared_experiment)
        expected = (
            shared_experiment.config.num_trials * shared_experiment.config.num_users
        )
        assert result.num_series == expected
        assert result.user_series.shape == (expected, len(result.years))
        assert result.user_races.shape == (expected,)

    def test_dispersion_shrinks_from_start_to_end(self, shared_experiment):
        result = fig4_user_adr(result=shared_experiment)
        warm_up = shared_experiment.config.warm_up_rounds
        assert result.dispersion_series[-1] <= result.dispersion_series[warm_up]

    def test_summary_reports_the_spread(self, shared_experiment):
        text = fig4_user_adr(result=shared_experiment).summary()
        assert "cross-user spread" in text


class TestFig5:
    def test_density_rows_sum_to_one(self, shared_experiment):
        result = fig5_density(result=shared_experiment)
        np.testing.assert_allclose(result.density.sum(axis=1), 1.0, atol=1e-9)

    def test_mass_concentrates_at_low_adr_over_time(self, shared_experiment):
        result = fig5_density(result=shared_experiment)
        centers = (result.bin_edges[:-1] + result.bin_edges[1:]) / 2.0
        high_bins = centers > 0.5
        warm_up = shared_experiment.config.warm_up_rounds
        # The high-ADR tail thins out over the simulation and most users end
        # up below an ADR of 0.10 — the "dwindling" of the paper's Figure 5.
        assert result.density[-1, high_bins].sum() <= result.density[warm_up, high_bins].sum()
        assert result.mass_below_010[-1] > 0.6

    def test_modal_bin_is_low_by_the_end(self, shared_experiment):
        result = fig5_density(result=shared_experiment)
        assert result.modal_bin_centers[-1] < 0.2

    def test_rejects_too_few_bins(self, shared_experiment):
        with pytest.raises(ValueError):
            fig5_density(result=shared_experiment, num_bins=1)

    def test_summary_lists_every_year(self, shared_experiment):
        text = fig5_density(result=shared_experiment).summary()
        assert "2002" in text and "2020" in text
