"""Tests for repro.experiments.config."""

from __future__ import annotations

import pytest

from repro.data.census import Race
from repro.experiments.config import CaseStudyConfig


class TestDefaults:
    def test_paper_parameters(self):
        config = CaseStudyConfig()
        assert config.num_users == 1000
        assert config.num_trials == 5
        assert config.start_year == 2002
        assert config.end_year == 2020
        assert config.cutoff == pytest.approx(0.4)
        assert config.warm_up_rounds == 2
        assert config.income_multiple == pytest.approx(3.5)
        assert config.annual_rate == pytest.approx(0.0216)
        assert config.living_cost == pytest.approx(10.0)
        assert config.repayment_sensitivity == pytest.approx(5.0)

    def test_num_steps_covers_2002_to_2020(self):
        assert CaseStudyConfig().num_steps == 19

    def test_years_tuple(self):
        years = CaseStudyConfig().years
        assert years[0] == 2002
        assert years[-1] == 2020
        assert len(years) == 19

    def test_race_mix_matches_the_paper(self):
        mix = CaseStudyConfig().race_mix
        assert mix[Race.BLACK] == pytest.approx(0.1235)
        assert mix[Race.WHITE] == pytest.approx(0.8406)
        assert mix[Race.ASIAN] == pytest.approx(0.0359)


class TestValidationAndScaling:
    def test_rejects_inverted_year_range(self):
        with pytest.raises(ValueError):
            CaseStudyConfig(start_year=2020, end_year=2002)

    def test_rejects_non_positive_population(self):
        with pytest.raises(ValueError):
            CaseStudyConfig(num_users=0)

    def test_rejects_negative_warm_up(self):
        with pytest.raises(ValueError):
            CaseStudyConfig(warm_up_rounds=-1)

    def test_scaled_copy_changes_only_the_requested_fields(self):
        config = CaseStudyConfig()
        scaled = config.scaled(num_users=50, num_trials=2)
        assert scaled.num_users == 50
        assert scaled.num_trials == 2
        assert scaled.start_year == config.start_year
        assert scaled.cutoff == config.cutoff

    def test_scaled_without_arguments_is_identical(self):
        config = CaseStudyConfig()
        assert config.scaled() == config

    def test_config_is_hashable_and_frozen(self):
        config = CaseStudyConfig()
        with pytest.raises(AttributeError):
            config.num_users = 5  # type: ignore[misc]
