"""Shard-determinism suite: the execution layout never perturbs the stream.

The sharded engine's invariant is that a trial's trajectory is a pure
function of ``(trial seed, canonical shard partition, step)`` — the worker
count (``num_shards``), the executor kind (``shard_parallel``) and the
history mode are pure execution details.  This suite pins that invariant
against the same golden digests as ``test_engine_equivalence.py``:

* group-level series digests for ``num_shards in {1, 2, 8}``, serial and
  process-pooled, in both history modes;
* full per-user matrices for the pooled layouts (the orchestrator records
  centrally, so even the ``(steps, users)`` columns must be bit-identical);
* worker-side state reconciliation: after a pooled run the loop's filter
  and population hold the exact serial end state (via
  ``DefaultRateFilter.merge`` / ``import_shard_state``).

The CI shard-matrix job runs this file once per worker count with
``REPRO_TEST_SHARDS`` set; without the variable every count is covered.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.streaming import AggregateHistory
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_experiment, run_trial

from tests.experiments.harness import (
    ENGINE_GOLDEN,
    digest,
    expected_group_digests,
    group_digests,
)


def _shard_counts() -> tuple:
    override = os.environ.get("REPRO_TEST_SHARDS")
    if override:
        return (int(override),)
    return (1, 2, 8)


SHARD_COUNTS = _shard_counts()


@pytest.fixture(scope="module")
def small_config(golden_config) -> CaseStudyConfig:
    return golden_config


@pytest.fixture(scope="module")
def reference_trial(small_config):
    return run_trial(small_config, trial_index=0)


class TestShardCountInvariance:
    """num_shards x shard_parallel x history_mode -> one golden stream."""

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("shard_parallel", [False, True])
    def test_full_mode_matches_goldens(
        self, small_config, num_shards, shard_parallel
    ):
        trial = run_trial(
            small_config,
            trial_index=0,
            num_shards=num_shards,
            shard_parallel=shard_parallel,
        )
        assert group_digests(trial) == expected_group_digests()
        assert digest(trial.user_default_rates) == ENGINE_GOLDEN["trial0_user_rates"]
        assert (
            digest(trial.history.decisions_matrix())
            == ENGINE_GOLDEN["trial0_decisions"]
        )
        assert digest(trial.history.actions_matrix()) == ENGINE_GOLDEN["trial0_actions"]
        assert (
            digest(trial.history.public_feature_matrix("income"))
            == ENGINE_GOLDEN["trial0_income"]
        )
        assert (
            digest(trial.history.observation_series("portfolio_rate"))
            == ENGINE_GOLDEN["trial0_portfolio"]
        )

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("shard_parallel", [False, True])
    def test_aggregate_mode_matches_goldens(
        self, small_config, num_shards, shard_parallel
    ):
        trial = run_trial(
            small_config,
            trial_index=0,
            history_mode="aggregate",
            num_shards=num_shards,
            shard_parallel=shard_parallel,
        )
        assert isinstance(trial.history, AggregateHistory)
        assert group_digests(trial) == expected_group_digests()
        assert (
            digest(trial.history.portfolio_rate_series())
            == ENGINE_GOLDEN["trial0_portfolio"]
        )


class TestPooledStateReconciliation:
    """A pooled run leaves the loop's own objects in the serial end state."""

    def test_filter_and_population_state_match_serial(self, small_config):
        from repro.core.ai_system import CreditScoringSystem
        from repro.core.filters import DefaultRateFilter
        from repro.core.loop import ClosedLoop
        from repro.core.population import CreditPopulation
        from repro.credit.lender import Lender
        from repro.data.synthetic import PopulationSpec, generate_population

        def build_loop() -> ClosedLoop:
            rng = np.random.default_rng(3)
            population = CreditPopulation(
                population=generate_population(PopulationSpec(size=120), rng)
            )
            return ClosedLoop(
                ai_system=CreditScoringSystem(Lender(warm_up_rounds=2)),
                population=population,
                loop_filter=DefaultRateFilter(num_users=120),
            )

        serial_loop = build_loop()
        serial_loop.run(6, rng=11)
        pooled_loop = build_loop()
        pooled_loop.run(6, rng=11, num_shards=4, shard_parallel=True)

        serial_obs = serial_loop.loop_filter.observation()
        pooled_obs = pooled_loop.loop_filter.observation()
        assert np.array_equal(
            serial_obs["user_default_rates"], pooled_obs["user_default_rates"]
        )
        assert serial_obs["portfolio_rate"] == pooled_obs["portfolio_rate"]
        assert np.array_equal(
            serial_loop.population.current_affordability,
            pooled_loop.population.current_affordability,
        )

    def test_pool_falls_back_for_filter_subclass(self):
        """A DefaultRateFilter subclass keeps its behavior via the serial path.

        Pooled workers instantiate the plain base class, so a subclass
        must be deemed ineligible — otherwise its overridden observation
        would silently vanish inside the pool.
        """
        from repro.core.ai_system import CreditScoringSystem
        from repro.core.filters import DefaultRateFilter
        from repro.core.loop import ClosedLoop
        from repro.core.population import CreditPopulation
        from repro.credit.lender import Lender
        from repro.data.synthetic import PopulationSpec, generate_population

        class ClippedFilter(DefaultRateFilter):
            def observation(self):
                observation = super().observation()
                observation["user_default_rates"] = np.minimum(
                    observation["user_default_rates"], 0.5
                )
                return observation

        def build() -> ClosedLoop:
            rng = np.random.default_rng(9)
            population = CreditPopulation(
                population=generate_population(PopulationSpec(size=60), rng)
            )
            return ClosedLoop(
                ai_system=CreditScoringSystem(Lender(warm_up_rounds=2)),
                population=population,
                loop_filter=ClippedFilter(num_users=60),
            )

        serial = build().run(6, rng=4)
        pooled = build().run(6, rng=4, num_shards=4, shard_parallel=True)
        assert np.array_equal(
            serial.observation_series("user_default_rates"),
            pooled.observation_series("user_default_rates"),
        )
        assert np.array_equal(serial.actions_matrix(), pooled.actions_matrix())

    def test_pool_falls_back_for_non_default_filter(self):
        """An unshardable filter silently runs the bit-identical serial path."""
        from repro.core.ai_system import ConstantDecisionSystem
        from repro.core.filters import CumulativeAverageFilter
        from repro.core.loop import ClosedLoop
        from repro.core.population import CreditPopulation
        from repro.data.synthetic import PopulationSpec, generate_population

        def build(filter_factory) -> ClosedLoop:
            rng = np.random.default_rng(5)
            population = CreditPopulation(
                population=generate_population(PopulationSpec(size=60), rng)
            )
            return ClosedLoop(
                ai_system=ConstantDecisionSystem(1),
                population=population,
                loop_filter=filter_factory(),
            )

        serial = build(lambda: CumulativeAverageFilter(num_users=60)).run(4, rng=2)
        pooled = build(lambda: CumulativeAverageFilter(num_users=60)).run(
            4, rng=2, num_shards=4, shard_parallel=True
        )
        assert np.array_equal(serial.actions_matrix(), pooled.actions_matrix())


class TestExperimentLevelComposition:
    """Intra-trial sharding composes with trial-level parallelism."""

    def test_shard_parallel_composes_with_trial_parallel(self, small_config):
        serial = run_experiment(small_config)
        composed = run_experiment(
            small_config,
            parallel=True,
            max_workers=2,
            num_shards=2,
            shard_parallel=True,
        )
        assert len(serial.trials) == len(composed.trials)
        for left, right in zip(serial.trials, composed.trials):
            assert np.array_equal(left.user_default_rates, right.user_default_rates)

    def test_config_knobs_are_honoured(self, small_config, reference_trial):
        config = CaseStudyConfig(
            num_users=small_config.num_users,
            num_trials=1,
            num_shards=2,
            shard_parallel=True,
        )
        result = run_experiment(config)
        assert np.array_equal(
            result.trials[0].user_default_rates, reference_trial.user_default_rates
        )

    def test_invalid_shard_count_is_rejected(self, small_config):
        with pytest.raises(ValueError):
            CaseStudyConfig(num_shards=0)
        with pytest.raises(ValueError):
            run_trial(small_config, trial_index=0, num_shards=-1)


class TestChunkedShardedRuns:
    """Chunked runs replay the stateless per-(shard, step) streams exactly."""

    def test_chunked_run_matches_single_run(self):
        from repro.core.ai_system import CreditScoringSystem
        from repro.core.filters import DefaultRateFilter
        from repro.core.loop import ClosedLoop
        from repro.core.population import CreditPopulation
        from repro.credit.lender import Lender
        from repro.data.synthetic import PopulationSpec, generate_population

        def build_loop() -> ClosedLoop:
            rng = np.random.default_rng(1)
            population = CreditPopulation(
                population=generate_population(PopulationSpec(size=50), rng)
            )
            return ClosedLoop(
                ai_system=CreditScoringSystem(Lender(warm_up_rounds=2)),
                population=population,
                loop_filter=DefaultRateFilter(num_users=50),
            )

        whole = build_loop().run(10, rng=77)
        loop = build_loop()
        history = loop.run(4, rng=77)
        history = loop.run(6, history=history)
        assert np.array_equal(whole.decisions_matrix(), history.decisions_matrix())
        assert np.array_equal(whole.actions_matrix(), history.actions_matrix())

    def test_diagnostic_step_does_not_perturb_a_continuation(self):
        from repro.core.ai_system import CreditScoringSystem
        from repro.core.filters import DefaultRateFilter
        from repro.core.loop import ClosedLoop
        from repro.core.population import CreditPopulation
        from repro.credit.lender import Lender
        from repro.data.synthetic import PopulationSpec, generate_population

        def build_loop() -> ClosedLoop:
            rng = np.random.default_rng(1)
            population = CreditPopulation(
                population=generate_population(PopulationSpec(size=50), rng)
            )
            return ClosedLoop(
                ai_system=CreditScoringSystem(Lender(warm_up_rounds=2)),
                population=population,
                loop_filter=DefaultRateFilter(num_users=50),
            )

        whole = build_loop().run(10, rng=77)
        loop = build_loop()
        history = loop.run(4, rng=77)
        # A diagnostic peek resolves its own (entropy) base per call and
        # must not clobber the continuation's schedule.  It does advance
        # the filter/AI state, so the continuation's *decisions* legally
        # differ — but the incomes depend only on (base, shard, step), so
        # they prove the rng=77 schedule survived the peek.
        loop.step(99)
        resumed = loop.run(6, history=history)
        assert np.array_equal(
            whole.public_feature_matrix("income")[4:],
            resumed.public_feature_matrix("income")[4:],
        )
