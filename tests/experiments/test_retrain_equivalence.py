"""Retrain-mode equivalence suite: compression never changes a decision.

``retrain_mode="exact"`` is the bit-exact reproduction path and must keep
matching the pinned engine goldens (its IRLS iteration is untouched by the
sufficient-statistics machinery).  ``retrain_mode="compressed"`` optimises
the *same* penalised likelihood on the deduplicated count table, so its
coefficients agree with exact to solver tolerance — and because decisions
threshold the score at 0.4 with macroscopic margins, the decision vectors
are *identical* at paper scale, which in turn makes the whole trajectory
bit-identical (every random draw downstream of the decisions replays).

The suite pins:

* exact mode (explicitly requested) against the golden digests of
  ``test_engine_equivalence.py``;
* compressed vs exact: identical decision/action/rate matrices at paper
  scale (1000 users, full 2002-2020 window) across three seeds, plus
  final-scorecard coefficient agreement ``<= 1e-9``;
* pooled-compressed vs serial-compressed: the merged shard count tables
  reproduce the whole-population table bit for bit, so coefficients —
  not just decisions — are *equal*, for every worker count;
* warm-started refits: same decision vectors at paper scale.

The CI retrain-matrix job runs this file once per (mode, execution) cell
with ``REPRO_TEST_RETRAIN_MODE`` / ``REPRO_TEST_EXECUTION`` set; without
the variables every combination is covered.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_trial

from tests.experiments.harness import ENGINE_GOLDEN, digest

PAPER_SEEDS = (20240101, 777, 31415)


def _modes() -> tuple:
    override = os.environ.get("REPRO_TEST_RETRAIN_MODE")
    if override:
        return (override,)
    return ("exact", "compressed")


def _executions() -> tuple:
    override = os.environ.get("REPRO_TEST_EXECUTION")
    if override:
        return (override,)
    return ("serial", "sharded", "batched")


MODES = _modes()
EXECUTIONS = _executions()


def _shard_kwargs(execution: str) -> dict:
    if execution == "sharded":
        return dict(num_shards=2, shard_parallel=True)
    return {}


def _execution_trial(config, trial_index: int, retrain_mode: str, execution: str):
    """Run one trial under the given execution layout.

    ``serial`` and ``sharded`` drive :func:`run_trial` directly;
    ``batched`` routes through the trial-batched engine
    (``run_experiment(..., trial_batch=True)``), whose trial rows are
    bit-identical to their serial twins — so every retrain-mode guarantee
    must hold there cell for cell too.
    """
    if execution == "batched":
        from repro.experiments.runner import run_experiment

        result = run_experiment(config, retrain_mode=retrain_mode, trial_batch=True)
        return result.trials[trial_index]
    return run_trial(
        config,
        trial_index=trial_index,
        retrain_mode=retrain_mode,
        **_shard_kwargs(execution),
    )


def _final_card_points(trial_seed: int, num_users: int, mode: str, **kwargs):
    """Run one closed loop directly and return the final scorecard params."""
    from repro.core.ai_system import CreditScoringSystem
    from repro.core.filters import DefaultRateFilter
    from repro.core.loop import ClosedLoop
    from repro.core.population import CreditPopulation
    from repro.credit.lender import Lender
    from repro.data.synthetic import PopulationSpec, generate_population

    rng = np.random.default_rng(trial_seed)
    population = CreditPopulation(
        population=generate_population(PopulationSpec(size=num_users), rng)
    )
    system = CreditScoringSystem(Lender(retrain_mode=mode, **kwargs))
    loop = ClosedLoop(
        ai_system=system,
        population=population,
        loop_filter=DefaultRateFilter(num_users=num_users),
    )
    history = loop.run(19, rng=trial_seed, **_shard_kwargs("serial"))
    card = system.lender.scorecard
    points = {factor.name: factor.points for factor in card.factors}
    points["__base__"] = card.base_score
    return history, points


class TestExactModeIsThePinnedPath:
    """Explicitly requested exact mode reproduces the engine goldens."""

    def test_defaults_are_exact(self):
        from repro.credit.lender import Lender

        assert CaseStudyConfig().retrain_mode == "exact"
        assert not CaseStudyConfig().warm_start
        assert Lender().retrain_mode == "exact"

    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_exact_matches_engine_goldens(self, execution):
        if "exact" not in MODES:
            pytest.skip("matrix cell covers compressed mode only")
        config = CaseStudyConfig().scaled(num_users=200, num_trials=2)
        trial = _execution_trial(config, 0, "exact", execution)
        assert (
            digest(trial.history.decisions_matrix())
            == ENGINE_GOLDEN["trial0_decisions"]
        )
        assert digest(trial.history.actions_matrix()) == ENGINE_GOLDEN["trial0_actions"]
        assert digest(trial.user_default_rates) == ENGINE_GOLDEN["trial0_user_rates"]


class TestCompressedMatchesExact:
    """Identical decision vectors — hence identical trajectories — at paper scale."""

    @pytest.mark.parametrize("seed", PAPER_SEEDS)
    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_decision_vectors_identical_at_paper_scale(self, seed, execution):
        if "compressed" not in MODES:
            pytest.skip("matrix cell covers exact mode only")
        config = CaseStudyConfig(num_users=1000, num_trials=1, seed=seed)
        exact = run_trial(config, trial_index=0, retrain_mode="exact")
        compressed = _execution_trial(config, 0, "compressed", execution)
        assert np.array_equal(
            exact.history.decisions_matrix(), compressed.history.decisions_matrix()
        )
        assert np.array_equal(
            exact.history.actions_matrix(), compressed.history.actions_matrix()
        )
        assert np.array_equal(
            exact.user_default_rates, compressed.user_default_rates
        )

    @pytest.mark.parametrize("seed", PAPER_SEEDS)
    def test_final_coefficients_agree_to_solver_tolerance(self, seed):
        if "compressed" not in MODES:
            pytest.skip("matrix cell covers exact mode only")
        _, exact_points = _final_card_points(seed, 1000, "exact")
        _, compressed_points = _final_card_points(seed, 1000, "compressed")
        for name, value in exact_points.items():
            assert compressed_points[name] == pytest.approx(value, abs=1e-9), name


class TestPooledCompressedIsBitIdentical:
    """Merged shard tables == whole-population table, so the fits are equal."""

    @pytest.mark.parametrize("num_shards", [2, 8])
    def test_pooled_equals_serial_compressed(self, num_shards):
        if "compressed" not in MODES or "sharded" not in EXECUTIONS:
            pytest.skip("matrix cell does not cover pooled compressed runs")
        config = CaseStudyConfig(num_users=400, num_trials=1)
        serial = run_trial(config, trial_index=0, retrain_mode="compressed")
        pooled = run_trial(
            config,
            trial_index=0,
            retrain_mode="compressed",
            num_shards=num_shards,
            shard_parallel=True,
        )
        assert np.array_equal(
            serial.history.decisions_matrix(), pooled.history.decisions_matrix()
        )
        assert np.array_equal(
            serial.history.actions_matrix(), pooled.history.actions_matrix()
        )
        assert np.array_equal(serial.user_default_rates, pooled.user_default_rates)

    def test_pooled_central_fit_sees_the_exact_merged_table(self):
        """The orchestrator's merged table equals one-pass compression."""
        if "compressed" not in MODES or "sharded" not in EXECUTIONS:
            pytest.skip("matrix cell does not cover pooled compressed runs")
        from repro.core.ai_system import CreditScoringSystem
        from repro.core.filters import DefaultRateFilter
        from repro.core.loop import ClosedLoop
        from repro.core.population import CreditPopulation
        from repro.credit.lender import Lender
        from repro.data.synthetic import PopulationSpec, generate_population

        def final_points(shard_parallel: bool) -> dict:
            rng = np.random.default_rng(3)
            population = CreditPopulation(
                population=generate_population(PopulationSpec(size=240), rng)
            )
            system = CreditScoringSystem(Lender(retrain_mode="compressed"))
            loop = ClosedLoop(
                ai_system=system,
                population=population,
                loop_filter=DefaultRateFilter(num_users=240),
            )
            loop.run(8, rng=11, num_shards=4, shard_parallel=shard_parallel)
            card = system.lender.scorecard
            points = {factor.name: factor.points for factor in card.factors}
            points["__base__"] = card.base_score
            return points

        serial = final_points(False)
        pooled = final_points(True)
        # Equality, not tolerance: the fit inputs are bit-equal.
        assert pooled == serial


class TestWarmStart:
    def test_warm_start_keeps_paper_scale_decisions(self):
        if "compressed" not in MODES:
            pytest.skip("matrix cell covers exact mode only")
        config = CaseStudyConfig(num_users=1000, num_trials=1)
        cold = run_trial(config, trial_index=0, retrain_mode="compressed")
        warm = run_trial(
            config, trial_index=0, retrain_mode="compressed", warm_start=True
        )
        assert np.array_equal(
            cold.history.decisions_matrix(), warm.history.decisions_matrix()
        )
