"""Chaos suite: checkpoint/resume and supervised pools under injected faults.

Every scenario follows the same shape: run the scaled case study once,
uninterrupted, as the golden; then run it again with a deterministic fault
armed (worker kill, raised exception, hang, torn checkpoint write) at a
chosen ``(trial, shard, step)`` coordinate; recover — supervised retry,
serial fallback, or explicit ``resume`` — and assert the recovered
trajectory is **bit-identical** to the golden.  Bit-identity is the paper
repository's core invariant (stateless per ``(trial, shard, step)`` random
streams), so fault tolerance must never cost a single bit.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointError, list_checkpoints
from repro.core.supervision import SupervisorPolicy
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_experiment, run_trial
from repro.testing.faults import (
    FAULTS_ENV,
    FaultInjected,
    FaultSpec,
    clear_plan,
    install_plan,
    plan_environment,
)

#: 60 users over the paper's 19 years: two pooled workers split the eight
#: canonical shards as ids [0..3] (worker 0) and [4..7] (worker 1), so a
#: fault pinned to ``shard=4`` lands in worker 1.
WORKER1_SHARD = 4

#: A supervisor that retries instantly (chaos tests should not sleep) and
#: treats >5 s of silence as a hang — orders of magnitude above a step.
FAST_SUPERVISOR = SupervisorPolicy(max_retries=2, timeout=5.0, backoff_base=0.0)


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No fault plan may leak between tests (or out of the suite)."""
    clear_plan()
    os.environ.pop(FAULTS_ENV, None)
    yield
    clear_plan()
    os.environ.pop(FAULTS_ENV, None)


@pytest.fixture(scope="module")
def ft_config() -> CaseStudyConfig:
    return CaseStudyConfig(num_users=60, num_trials=3, seed=424)


@pytest.fixture(scope="module")
def golden_trial(ft_config):
    return run_trial(ft_config, trial_index=0)


@pytest.fixture(scope="module")
def golden_experiment(ft_config):
    return run_experiment(ft_config)


def assert_trials_identical(left, right):
    np.testing.assert_array_equal(
        left.history.decisions_matrix(), right.history.decisions_matrix()
    )
    np.testing.assert_array_equal(
        left.history.actions_matrix(), right.history.actions_matrix()
    )
    np.testing.assert_array_equal(left.user_default_rates, right.user_default_rates)
    np.testing.assert_array_equal(left.races, right.races)
    for race, series in left.group_default_rates.items():
        np.testing.assert_array_equal(series, right.group_default_rates[race])


def assert_experiments_identical(left, right):
    assert len(left.trials) == len(right.trials)
    for trial_left, trial_right in zip(left.trials, right.trials):
        assert_trials_identical(trial_left, trial_right)


class TestCheckpointResume:
    """Interrupted-and-resumed trials replay the uninterrupted bytes."""

    def test_resumed_trial_is_bit_identical(self, ft_config, golden_trial, tmp_path):
        install_plan([FaultSpec(site="loop_step", kind="raise", step=8)])
        with pytest.raises(FaultInjected):
            run_trial(
                ft_config,
                trial_index=0,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=3,
            )
        # The crash left the step-3 and step-6 snapshots behind.
        assert [s for s, _ in list_checkpoints(tmp_path, "trial-0000")] == [6, 3]
        resumed = run_trial(
            ft_config,
            trial_index=0,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=3,
            resume=True,
        )
        assert_trials_identical(golden_trial, resumed)

    def test_resume_with_no_snapshot_starts_from_scratch(
        self, ft_config, golden_trial, tmp_path
    ):
        resumed = run_trial(
            ft_config,
            trial_index=0,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=5,
            resume=True,
        )
        assert_trials_identical(golden_trial, resumed)

    def test_resume_across_aggregate_history_mode(self, ft_config, tmp_path):
        golden = run_trial(ft_config, trial_index=0, history_mode="aggregate")
        install_plan([FaultSpec(site="loop_step", kind="raise", step=10)])
        with pytest.raises(FaultInjected):
            run_trial(
                ft_config,
                trial_index=0,
                history_mode="aggregate",
                checkpoint_dir=str(tmp_path),
                checkpoint_every=4,
            )
        resumed = run_trial(
            ft_config,
            trial_index=0,
            history_mode="aggregate",
            checkpoint_dir=str(tmp_path),
            checkpoint_every=4,
            resume=True,
        )
        for race, series in golden.group_default_rates.items():
            np.testing.assert_array_equal(series, resumed.group_default_rates[race])

    def test_resume_across_compressed_retrain_mode(self, ft_config, tmp_path):
        golden = run_trial(ft_config, trial_index=0, retrain_mode="compressed")
        install_plan([FaultSpec(site="loop_step", kind="raise", step=7)])
        with pytest.raises(FaultInjected):
            run_trial(
                ft_config,
                trial_index=0,
                retrain_mode="compressed",
                checkpoint_dir=str(tmp_path),
                checkpoint_every=3,
            )
        resumed = run_trial(
            ft_config,
            trial_index=0,
            retrain_mode="compressed",
            checkpoint_dir=str(tmp_path),
            checkpoint_every=3,
            resume=True,
        )
        assert_trials_identical(golden, resumed)

    def test_torn_newest_snapshot_falls_back_one_boundary(
        self, ft_config, golden_trial, tmp_path
    ):
        install_plan([FaultSpec(site="loop_step", kind="raise", step=8)])
        with pytest.raises(FaultInjected):
            run_trial(
                ft_config,
                trial_index=0,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=3,
            )
        # Tear the newest snapshot (step 6) the way a mid-rename power cut
        # would; recovery must detect it and fall back to step 3.
        newest = list_checkpoints(tmp_path, "trial-0000")[0][1]
        with open(newest, "r+b") as handle:
            handle.truncate(os.path.getsize(newest) // 2)
        with pytest.warns(RuntimeWarning, match="skipping unreadable checkpoint"):
            resumed = run_trial(
                ft_config,
                trial_index=0,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=3,
                resume=True,
            )
        assert_trials_identical(golden_trial, resumed)

    def test_injected_torn_write_recovers_from_scratch(
        self, ft_config, golden_trial, tmp_path
    ):
        # The torn_write fault chops the *first* landed snapshot (step 3);
        # interrupting before the next boundary leaves only the torn file,
        # so resume degrades all the way to a fresh start — still
        # bit-identical.
        install_plan(
            [
                FaultSpec(site="checkpoint_write", kind="torn_write"),
                FaultSpec(site="loop_step", kind="raise", step=5),
            ]
        )
        with pytest.raises(FaultInjected):
            run_trial(
                ft_config,
                trial_index=0,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=3,
            )
        with pytest.warns(RuntimeWarning, match="skipping unreadable checkpoint"):
            resumed = run_trial(
                ft_config,
                trial_index=0,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=3,
                resume=True,
            )
        assert_trials_identical(golden_trial, resumed)

    def test_fingerprint_mismatch_is_rejected_with_guidance(
        self, ft_config, tmp_path
    ):
        install_plan([FaultSpec(site="loop_step", kind="raise", step=8)])
        with pytest.raises(FaultInjected):
            run_trial(
                ft_config,
                trial_index=0,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=3,
            )
        other = CaseStudyConfig(num_users=60, num_trials=3, seed=425)
        with pytest.raises(CheckpointError, match="different\\s+configuration"):
            run_trial(
                other,
                trial_index=0,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=3,
                resume=True,
            )


class TestExperimentResume:
    def test_completed_trials_are_skipped_on_resume(
        self, ft_config, golden_experiment, tmp_path
    ):
        first = run_experiment(ft_config, checkpoint_dir=str(tmp_path))
        assert_experiments_identical(golden_experiment, first)

        def exploding_factory(config, population):  # pragma: no cover - must not run
            raise AssertionError("resume re-ran an already-completed trial")

        resumed = run_experiment(
            ft_config,
            policy_factory=exploding_factory,
            checkpoint_dir=str(tmp_path),
            resume=True,
        )
        assert_experiments_identical(golden_experiment, resumed)

    def test_partial_experiment_resumes_the_missing_trials(
        self, ft_config, golden_experiment, tmp_path
    ):
        run_experiment(ft_config, checkpoint_dir=str(tmp_path))
        # Lose trial 1's persisted result; resume must re-run exactly it.
        (tmp_path / "trial-0001.result").unlink()
        resumed = run_experiment(
            ft_config, checkpoint_dir=str(tmp_path), resume=True
        )
        assert_experiments_identical(golden_experiment, resumed)

    def test_unreadable_result_file_is_rerun_with_warning(
        self, ft_config, golden_experiment, tmp_path
    ):
        run_experiment(ft_config, checkpoint_dir=str(tmp_path))
        (tmp_path / "trial-0002.result").write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning, match="re-running trial 2"):
            resumed = run_experiment(
                ft_config, checkpoint_dir=str(tmp_path), resume=True
            )
        assert_experiments_identical(golden_experiment, resumed)


class TestSupervisedShardPool:
    """The intra-trial shard pool survives death, raises, and hangs."""

    def _pooled(self, ft_config, tmp_path, **kwargs):
        return run_trial(
            ft_config,
            trial_index=0,
            num_shards=2,
            shard_parallel=True,
            supervisor=FAST_SUPERVISOR,
            **kwargs,
        )

    def test_worker_kill_is_retried_bit_identically(
        self, ft_config, golden_trial, tmp_path
    ):
        os.environ.update(
            plan_environment(
                [
                    FaultSpec(
                        site="shard_worker_begin",
                        kind="kill",
                        shard=WORKER1_SHARD,
                        step=5,
                    )
                ],
                state_dir=tmp_path,
            )
        )
        with pytest.warns(RuntimeWarning, match="rebuilding the pool"):
            recovered = self._pooled(ft_config, tmp_path)
        assert_trials_identical(golden_trial, recovered)

    def test_worker_exception_is_retried_bit_identically(
        self, ft_config, golden_trial, tmp_path
    ):
        os.environ.update(
            plan_environment(
                [
                    FaultSpec(
                        site="shard_worker_respond",
                        kind="raise",
                        shard=0,
                        step=3,
                    )
                ],
                state_dir=tmp_path,
            )
        )
        with pytest.warns(RuntimeWarning, match="rebuilding the pool"):
            recovered = self._pooled(ft_config, tmp_path)
        assert_trials_identical(golden_trial, recovered)

    def test_hung_worker_times_out_and_is_retried(
        self, ft_config, golden_trial, tmp_path
    ):
        os.environ.update(
            plan_environment(
                [
                    FaultSpec(
                        site="shard_worker_begin",
                        kind="hang",
                        shard=WORKER1_SHARD,
                        step=4,
                        delay=3600.0,
                    )
                ],
                state_dir=tmp_path,
            )
        )
        with pytest.warns(RuntimeWarning, match="rebuilding the pool"):
            recovered = self._pooled(ft_config, tmp_path)
        assert_trials_identical(golden_trial, recovered)

    def test_exhausted_budget_degrades_to_serial(
        self, ft_config, golden_trial, tmp_path
    ):
        # once=False: the fault fires on every attempt, so the pool can
        # never get past step 2 and the retry budget runs dry.
        os.environ.update(
            plan_environment(
                [
                    FaultSpec(
                        site="shard_worker_begin",
                        kind="raise",
                        shard=0,
                        step=2,
                        once=False,
                    )
                ],
                state_dir=tmp_path,
            )
        )
        with pytest.warns(RuntimeWarning, match="serial path"):
            recovered = self._pooled(ft_config, tmp_path)
        assert_trials_identical(golden_trial, recovered)

    def test_kill_with_checkpoints_retries_from_the_boundary(
        self, ft_config, golden_trial, tmp_path
    ):
        state = tmp_path / "faults"
        snapshots = tmp_path / "snapshots"
        os.environ.update(
            plan_environment(
                [
                    FaultSpec(
                        site="shard_worker_begin",
                        kind="kill",
                        shard=WORKER1_SHARD,
                        step=11,
                    )
                ],
                state_dir=state,
            )
        )
        with pytest.warns(RuntimeWarning, match="retrying from step 9"):
            recovered = self._pooled(
                ft_config,
                tmp_path,
                checkpoint_dir=str(snapshots),
                checkpoint_every=3,
            )
        assert_trials_identical(golden_trial, recovered)
        assert list_checkpoints(snapshots, "trial-0000")


class TestSupervisedTrialPool:
    """Satellite (a): a worker death mid-experiment no longer sinks it."""

    def test_worker_kill_mid_experiment_is_recovered(
        self, ft_config, golden_experiment, tmp_path
    ):
        os.environ.update(
            plan_environment(
                [FaultSpec(site="trial_worker", kind="kill", trial=1)],
                state_dir=tmp_path,
            )
        )
        with pytest.warns(RuntimeWarning, match="parallel trial pool failure"):
            recovered = run_experiment(
                ft_config,
                parallel=True,
                max_workers=2,
                supervisor=FAST_SUPERVISOR,
            )
        assert_experiments_identical(golden_experiment, recovered)

    def test_worker_exception_is_retried(
        self, ft_config, golden_experiment, tmp_path
    ):
        os.environ.update(
            plan_environment(
                [FaultSpec(site="trial_worker", kind="raise", trial=2)],
                state_dir=tmp_path,
            )
        )
        recovered = run_experiment(
            ft_config,
            parallel=True,
            max_workers=2,
            supervisor=FAST_SUPERVISOR,
        )
        assert_experiments_identical(golden_experiment, recovered)

    def test_exhausted_trial_budget_degrades_to_serial(
        self, ft_config, golden_experiment, tmp_path
    ):
        # max_retries=0: the first worker failure already exhausts the
        # budget, so trial 0 degrades to the in-process serial path (the
        # once-claim marker lets the serial re-run pass through cleanly).
        os.environ.update(
            plan_environment(
                [FaultSpec(site="trial_worker", kind="raise", trial=0)],
                state_dir=tmp_path,
            )
        )
        with pytest.warns(RuntimeWarning, match="exhausted its retry budget"):
            recovered = run_experiment(
                ft_config,
                parallel=True,
                max_workers=2,
                supervisor=SupervisorPolicy(max_retries=0, backoff_base=0.0),
            )
        assert_experiments_identical(golden_experiment, recovered)

    def test_killed_experiment_resumes_from_persisted_results(
        self, ft_config, golden_experiment, tmp_path
    ):
        # End-to-end kill-and-resume: trial 1's worker dies *and* the
        # retry budget is zero, so the experiment run raises nothing but
        # degrades trial 1 to the serial path; a fresh resume run then
        # skips everything already on disk.
        state = tmp_path / "faults"
        snapshots = tmp_path / "snapshots"
        os.environ.update(
            plan_environment(
                [FaultSpec(site="trial_worker", kind="kill", trial=1)],
                state_dir=state,
            )
        )
        with pytest.warns(RuntimeWarning, match="parallel trial pool failure"):
            first = run_experiment(
                ft_config,
                parallel=True,
                max_workers=2,
                supervisor=FAST_SUPERVISOR,
                checkpoint_dir=str(snapshots),
            )
        assert_experiments_identical(golden_experiment, first)
        os.environ.pop(FAULTS_ENV)
        resumed = run_experiment(
            ft_config, checkpoint_dir=str(snapshots), resume=True
        )
        assert_experiments_identical(golden_experiment, resumed)


class TestSharedMemoryHygiene:
    """No ``/dev/shm`` segment survives any pool exit route.

    The pooled shard path now moves its per-step payloads through one
    shared-memory arena per pool (:mod:`repro.core.shardmem`).  The
    orchestrator owns the segment and must unlink it on *every* exit:
    clean shutdown, worker kill/hang followed by a pool rebuild, and the
    exhausted-budget serial fallback.  ``live_segments()`` is the leak
    oracle; each scenario asserts the set of segments is unchanged.
    """

    def _pooled(self, ft_config, **kwargs):
        return run_trial(
            ft_config,
            trial_index=0,
            num_shards=2,
            shard_parallel=True,
            supervisor=FAST_SUPERVISOR,
            **kwargs,
        )

    def test_clean_pooled_run_leaves_no_segments(self, ft_config, golden_trial):
        from repro.core.shardmem import live_segments

        before = live_segments()
        recovered = self._pooled(ft_config)
        assert_trials_identical(golden_trial, recovered)
        assert live_segments() == before

    @pytest.mark.parametrize(
        "kind,extra",
        [("kill", {}), ("raise", {}), ("hang", {"delay": 3600.0})],
        ids=["kill", "raise", "hang"],
    )
    def test_rebuild_after_worker_failure_leaves_no_segments(
        self, ft_config, golden_trial, tmp_path, kind, extra
    ):
        from repro.core.shardmem import live_segments

        before = live_segments()
        os.environ.update(
            plan_environment(
                [
                    FaultSpec(
                        site="shard_worker_begin",
                        kind=kind,
                        shard=WORKER1_SHARD,
                        step=5,
                        **extra,
                    )
                ],
                state_dir=tmp_path,
            )
        )
        with pytest.warns(RuntimeWarning, match="rebuilding the pool"):
            recovered = self._pooled(ft_config)
        assert_trials_identical(golden_trial, recovered)
        assert live_segments() == before

    def test_serial_fallback_leaves_no_segments(
        self, ft_config, golden_trial, tmp_path
    ):
        from repro.core.shardmem import live_segments

        before = live_segments()
        os.environ.update(
            plan_environment(
                [
                    FaultSpec(
                        site="shard_worker_respond",
                        kind="raise",
                        shard=0,
                        step=2,
                        once=False,
                    )
                ],
                state_dir=tmp_path,
            )
        )
        with pytest.warns(RuntimeWarning, match="serial path"):
            recovered = self._pooled(ft_config)
        assert_trials_identical(golden_trial, recovered)
        assert live_segments() == before

    def test_pickle_transport_remains_available_and_identical(
        self, ft_config, golden_trial
    ):
        # The pickled fallback transport stays bit-identical to the arena
        # path (and is what populations without feature_channels use).
        from repro.core.shardmem import TransportMeter, set_transport_meter

        meter = TransportMeter()
        set_transport_meter(meter)
        try:
            shared = self._pooled(ft_config)
        finally:
            set_transport_meter(None)
        assert_trials_identical(golden_trial, shared)
        # The arena moved every per-step payload: nothing was pickled.
        assert meter.shared_bytes > 0
        assert meter.pickled_bytes == 0


class TestCrossPlanResume:
    """``execution="auto"`` resumes bit-for-bit under a different plan.

    Plans are excluded from checkpoint fingerprints, so a run interrupted
    on a 1-core host must resume on an 8-core host (where ``auto`` would
    pick a different layout) without a fingerprint rejection — and land on
    the uninterrupted trajectory exactly.
    """

    def test_auto_resume_across_core_counts(
        self, ft_config, golden_trial, tmp_path, monkeypatch
    ):
        from repro.core import planner

        monkeypatch.setattr(planner, "_detect_cpu_count", lambda: 1)
        install_plan([FaultSpec(site="loop_step", kind="raise", step=8)])
        with pytest.raises(FaultInjected):
            run_trial(
                ft_config,
                trial_index=0,
                execution="auto",
                checkpoint_dir=str(tmp_path),
                checkpoint_every=3,
            )
        clear_plan()
        # Resume on a "different host": more cores and a lowered shard
        # threshold, so auto would now plan a sharded layout for a fresh
        # run — the checkpoint must still be accepted and replayed.
        monkeypatch.setattr(planner, "_detect_cpu_count", lambda: 8)
        monkeypatch.setattr(planner, "AUTO_SHARD_MIN_USERS", 32)
        resumed = run_trial(
            ft_config,
            trial_index=0,
            execution="auto",
            checkpoint_dir=str(tmp_path),
            checkpoint_every=3,
            resume=True,
        )
        assert_trials_identical(golden_trial, resumed)

    def test_auto_experiment_resume_skips_completed_trials(
        self, ft_config, golden_experiment, tmp_path, monkeypatch
    ):
        from repro.core import planner

        monkeypatch.setattr(planner, "_detect_cpu_count", lambda: 1)
        first = run_experiment(
            ft_config, execution="auto", checkpoint_dir=str(tmp_path)
        )
        assert_experiments_identical(golden_experiment, first)
        monkeypatch.setattr(planner, "_detect_cpu_count", lambda: 8)
        resumed = run_experiment(
            ft_config,
            execution="auto",
            checkpoint_dir=str(tmp_path),
            resume=True,
        )
        assert_experiments_identical(golden_experiment, resumed)


class TestKnobValidation:
    """Satellite (b): bad knob combinations fail at configuration time."""

    def test_resume_requires_a_checkpoint_dir(self):
        with pytest.raises(ValueError, match="--checkpoint-dir"):
            CaseStudyConfig(resume=True)

    def test_checkpoint_every_requires_a_checkpoint_dir(self):
        with pytest.raises(ValueError, match="--checkpoint-dir"):
            CaseStudyConfig(checkpoint_every=5)

    def test_negative_checkpoint_every_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            CaseStudyConfig(checkpoint_dir=str(tmp_path), checkpoint_every=-1)

    def test_trial_batch_is_incompatible_with_checkpointing(self, tmp_path):
        with pytest.raises(ValueError, match="trial_batch"):
            CaseStudyConfig(
                checkpoint_dir=str(tmp_path), checkpoint_every=5, trial_batch=True
            )

    def test_run_trial_override_is_validated(self, tiny_config):
        with pytest.raises(ValueError, match="--checkpoint-dir"):
            run_trial(tiny_config, trial_index=0, resume=True)

    def test_run_experiment_override_is_validated(self, tiny_config):
        with pytest.raises(ValueError, match="--checkpoint-dir"):
            run_experiment(tiny_config, checkpoint_every=3)
        with pytest.raises(ValueError, match="trial_batch"):
            run_experiment(
                tiny_config,
                trial_batch=True,
                checkpoint_dir="/tmp/x",
                checkpoint_every=3,
            )
