"""Shared fixtures for the experiment-level equivalence suites.

The golden reference run — the serial 200-user, 2-trial experiment whose
digests are pinned in :mod:`tests.experiments.harness` — is consumed by
several suites (engine, streaming, execution).  Hoisting it to a
session-scoped fixture computes it once per test session instead of once
per module.  The fixtures are named ``golden_*`` so they never shadow the
repo-wide ``small_config`` (80 users) from ``tests/conftest.py``.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_experiment

from tests.experiments import harness


@pytest.fixture(scope="session")
def golden_config():
    """The configuration the golden digests were captured from."""
    return harness.golden_config()


@pytest.fixture(scope="session")
def golden_serial_result(golden_config):
    """The serial reference experiment every layout must reproduce."""
    return run_experiment(golden_config)
