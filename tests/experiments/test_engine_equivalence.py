"""Equivalence suite: the pinned random stream of the sharded engine.

The golden SHA-256 digests pin
``run_experiment(CaseStudyConfig().scaled(num_users=200, num_trials=2))``
bit for bit.  They have been re-captured exactly once since the seed
commit: the intra-trial sharding refactor replaced the single trial-wide
generator with per-shard, per-step derived streams
(``derive_seed(trial_seed, "shard", s)`` then ``"step", k`` — see
:mod:`repro.core.sharding`), a deliberate, pinned break from the seed
stream.  In exchange the schedule is now a pure function of ``(trial seed,
canonical shard, step)``: bit-identical for any worker count
(``num_shards``), serial or process-pooled (``shard_parallel``), chunked
or not — which ``test_shard_equivalence.py`` asserts against these same
digests.

The registry itself, the digest helpers and the differential assertions
live in :mod:`tests.experiments.harness` — one source of truth shared by
every equivalence suite (engine, streaming, shard, retrain, batch, and
the planner's ``test_execution_equivalence``).  ``ENGINE_GOLDEN`` and
``digest`` are re-exported here for backward compatibility.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ai_system import CreditScoringSystem
from repro.credit.lender import Lender
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_experiment, run_trial

from tests.experiments.harness import (
    ENGINE_GOLDEN,
    assert_experiments_identical,
    digest,
    experiment_digests,
)

__all__ = ["ENGINE_GOLDEN", "digest"]


@pytest.fixture(scope="module")
def small_config(golden_config) -> CaseStudyConfig:
    return golden_config


@pytest.fixture(scope="module")
def serial_result(golden_serial_result):
    return golden_serial_result


class TestEngineBitIdentity:
    """The engine reproduces the pinned golden stream exactly."""

    def test_experiment_matches_engine_goldens(self, serial_result):
        assert experiment_digests(serial_result) == ENGINE_GOLDEN

    def test_incremental_metrics_match_recompute_cross_check(self, serial_result):
        for trial in serial_result.trials:
            history = trial.history
            assert np.array_equal(
                history.running_default_rates(),
                history.recompute_running_default_rates(),
            )
            assert np.array_equal(
                history.running_action_averages(),
                history.recompute_running_action_averages(),
            )
            assert np.array_equal(
                history.approval_rates(), history.recompute_approval_rates()
            )


class TestParallelBitIdentity:
    """Parallel trials ride independent derived-seed streams; scheduling is irrelevant."""

    def test_process_parallel_matches_serial(self, small_config, serial_result):
        parallel = run_experiment(small_config, parallel=True, max_workers=2)
        assert_experiments_identical(serial_result, parallel)

    def test_non_picklable_factory_falls_back_to_serial(self, small_config, serial_result):
        # A lambda policy factory cannot be pickled, forcing the serial fallback.
        factory = lambda config, population: CreditScoringSystem(  # noqa: E731
            Lender(cutoff=config.cutoff, warm_up_rounds=config.warm_up_rounds)
        )
        serial = run_experiment(small_config, policy_factory=factory)
        parallel = run_experiment(
            small_config, policy_factory=factory, parallel=True, max_workers=2
        )
        assert_experiments_identical(serial, parallel)
        # The default factory builds the identical system, so the lambda run
        # must also match the golden serial result.
        assert_experiments_identical(serial_result, parallel)

    def test_config_knob_enables_parallelism(self, small_config, serial_result):
        config = CaseStudyConfig(
            num_users=small_config.num_users,
            num_trials=small_config.num_trials,
            parallel=True,
            max_workers=2,
        )
        parallel = run_experiment(config)
        for trial_left, trial_right in zip(serial_result.trials, parallel.trials):
            assert np.array_equal(
                trial_left.user_default_rates, trial_right.user_default_rates
            )

    def test_single_trial_ignores_parallel_flag(self):
        config = CaseStudyConfig(num_users=100, num_trials=1, parallel=True)
        result = run_experiment(config)
        reference = run_trial(config, trial_index=0)
        assert np.array_equal(
            result.trials[0].user_default_rates, reference.user_default_rates
        )

    def test_max_workers_validation(self):
        with pytest.raises(ValueError):
            CaseStudyConfig(max_workers=0)
        with pytest.raises(ValueError):
            run_experiment(
                CaseStudyConfig(num_users=10, num_trials=2),
                parallel=True,
                max_workers=0,
            )

    def test_one_worker_runs_serially(self, small_config, serial_result):
        result = run_experiment(small_config, parallel=True, max_workers=1)
        for trial_left, trial_right in zip(serial_result.trials, result.trials):
            assert np.array_equal(
                trial_left.user_default_rates, trial_right.user_default_rates
            )


class TestChunkedLoopEquivalence:
    """Running the loop in chunks appends to the same columnar history."""

    def test_chunked_run_matches_single_run(self):
        from repro.core.filters import DefaultRateFilter
        from repro.core.loop import ClosedLoop
        from repro.core.population import CreditPopulation
        from repro.data.synthetic import PopulationSpec, generate_population

        def build_loop(seed: int) -> ClosedLoop:
            rng = np.random.default_rng(seed)
            population = CreditPopulation(
                population=generate_population(PopulationSpec(size=50), rng)
            )
            return ClosedLoop(
                ai_system=CreditScoringSystem(Lender(warm_up_rounds=2)),
                population=population,
                loop_filter=DefaultRateFilter(num_users=50),
            )

        rng_whole = np.random.default_rng(77)
        whole = build_loop(1).run(10, rng=rng_whole)

        # A continuation (rng=None + existing history) reuses the base the
        # loop started with, replaying the unchunked schedule exactly.
        rng_chunks = np.random.default_rng(77)
        loop = build_loop(1)
        history = loop.run(4, rng=rng_chunks)
        history = loop.run(6, history=history)

        assert history.num_steps == whole.num_steps == 10
        assert np.array_equal(whole.decisions_matrix(), history.decisions_matrix())
        assert np.array_equal(whole.actions_matrix(), history.actions_matrix())
        assert np.array_equal(
            whole.running_default_rates(), history.running_default_rates()
        )
