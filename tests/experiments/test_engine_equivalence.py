"""Equivalence suite: the pinned random stream of the sharded engine.

The golden SHA-256 digests below pin
``run_experiment(CaseStudyConfig().scaled(num_users=200, num_trials=2))``
bit for bit.  They have been re-captured exactly once since the seed
commit: the intra-trial sharding refactor replaced the single trial-wide
generator with per-shard, per-step derived streams
(``derive_seed(trial_seed, "shard", s)`` then ``"step", k`` — see
:mod:`repro.core.sharding`), a deliberate, pinned break from the seed
stream.  In exchange the schedule is now a pure function of ``(trial seed,
canonical shard, step)``: bit-identical for any worker count
(``num_shards``), serial or process-pooled (``shard_parallel``), chunked
or not — which ``test_shard_equivalence.py`` asserts against these same
digests.

Three engine generations are pinned to this one set of hashes: the sharded
engine here, the streaming-aggregation mode
(``test_streaming_equivalence.py``) and every pooled execution layout.
The parallel trial runner must also stay bit-identical to the serial path.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.ai_system import CreditScoringSystem
from repro.credit.lender import Lender
from repro.data.census import Race
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_experiment, run_trial


def digest(array: np.ndarray) -> str:
    """Return a short SHA-256 digest of an array's exact float contents."""
    data = np.ascontiguousarray(np.asarray(array, dtype=float))
    return hashlib.sha256(data.tobytes()).hexdigest()[:16]


#: Captured from the sharded engine (see module docstring; the pre-sharding
#: goldens from seed commit 445c387 were retired with the stream break).
ENGINE_GOLDEN = {
    "trial0_decisions": "b8837abc827e91fd",
    "trial0_actions": "dbd00c78385e948a",
    "trial0_income": "d0093a48aa12b38d",
    "trial0_user_rates": "6b17e39189558b00",
    "trial0_obs_rates": "6b17e39189558b00",
    "trial0_portfolio": "112f7a712fa7a645",
    "trial0_running_actions": "b3e05cb2e044fcef",
    "trial0_approvals": "2d3ab12c55b9dd43",
    "trial0_group_BLACK": "2c7da37edcc62af4",
    "trial0_group_WHITE": "99ae0f9adbeabd21",
    "trial0_group_ASIAN": "85ada57e1f601e96",
    "trial1_decisions": "6750e1ef53c96a5c",
    "trial1_actions": "a479ea4044abc6ae",
    "trial1_income": "ba6ccea6352ea9ed",
    "trial1_user_rates": "67d1d1b8af953971",
    "trial1_obs_rates": "67d1d1b8af953971",
    "trial1_portfolio": "2121aaf952a725b1",
    "trial1_running_actions": "2ea7ffa96a1cc626",
    "trial1_approvals": "d7072999a25e09b7",
    "trial1_group_BLACK": "bd7adfa42dbd2a87",
    "trial1_group_WHITE": "b24cec3dfffb243d",
    "trial1_group_ASIAN": "4d15515f88a65170",
}


@pytest.fixture(scope="module")
def small_config() -> CaseStudyConfig:
    return CaseStudyConfig().scaled(num_users=200, num_trials=2)


@pytest.fixture(scope="module")
def serial_result(small_config):
    return run_experiment(small_config)


class TestEngineBitIdentity:
    """The engine reproduces the pinned golden stream exactly."""

    def test_experiment_matches_engine_goldens(self, serial_result):
        observed = {}
        for index, trial in enumerate(serial_result.trials):
            history = trial.history
            observed[f"trial{index}_decisions"] = digest(history.decisions_matrix())
            observed[f"trial{index}_actions"] = digest(history.actions_matrix())
            observed[f"trial{index}_income"] = digest(
                history.public_feature_matrix("income")
            )
            observed[f"trial{index}_user_rates"] = digest(trial.user_default_rates)
            observed[f"trial{index}_obs_rates"] = digest(
                history.observation_series("user_default_rates")
            )
            observed[f"trial{index}_portfolio"] = digest(
                history.observation_series("portfolio_rate")
            )
            observed[f"trial{index}_running_actions"] = digest(
                history.running_action_averages()
            )
            observed[f"trial{index}_approvals"] = digest(history.approval_rates())
            for race in Race:
                observed[f"trial{index}_group_{race.name}"] = digest(
                    trial.group_default_rates[race]
                )
        assert observed == ENGINE_GOLDEN

    def test_incremental_metrics_match_recompute_cross_check(self, serial_result):
        for trial in serial_result.trials:
            history = trial.history
            assert np.array_equal(
                history.running_default_rates(),
                history.recompute_running_default_rates(),
            )
            assert np.array_equal(
                history.running_action_averages(),
                history.recompute_running_action_averages(),
            )
            assert np.array_equal(
                history.approval_rates(), history.recompute_approval_rates()
            )


class TestParallelBitIdentity:
    """Parallel trials ride independent derived-seed streams; scheduling is irrelevant."""

    def _assert_experiments_identical(self, left, right):
        assert len(left.trials) == len(right.trials)
        for trial_left, trial_right in zip(left.trials, right.trials):
            assert np.array_equal(
                trial_left.history.decisions_matrix(),
                trial_right.history.decisions_matrix(),
            )
            assert np.array_equal(
                trial_left.history.actions_matrix(),
                trial_right.history.actions_matrix(),
            )
            assert np.array_equal(
                trial_left.user_default_rates, trial_right.user_default_rates
            )
            assert np.array_equal(trial_left.races, trial_right.races)
            for race in Race:
                assert np.array_equal(
                    trial_left.group_default_rates[race],
                    trial_right.group_default_rates[race],
                )

    def test_process_parallel_matches_serial(self, small_config, serial_result):
        parallel = run_experiment(small_config, parallel=True, max_workers=2)
        self._assert_experiments_identical(serial_result, parallel)

    def test_non_picklable_factory_falls_back_to_serial(self, small_config, serial_result):
        # A lambda policy factory cannot be pickled, forcing the serial fallback.
        factory = lambda config, population: CreditScoringSystem(  # noqa: E731
            Lender(cutoff=config.cutoff, warm_up_rounds=config.warm_up_rounds)
        )
        serial = run_experiment(small_config, policy_factory=factory)
        parallel = run_experiment(
            small_config, policy_factory=factory, parallel=True, max_workers=2
        )
        self._assert_experiments_identical(serial, parallel)
        # The default factory builds the identical system, so the lambda run
        # must also match the golden serial result.
        self._assert_experiments_identical(serial_result, parallel)

    def test_config_knob_enables_parallelism(self, small_config, serial_result):
        config = CaseStudyConfig(
            num_users=small_config.num_users,
            num_trials=small_config.num_trials,
            parallel=True,
            max_workers=2,
        )
        parallel = run_experiment(config)
        for trial_left, trial_right in zip(serial_result.trials, parallel.trials):
            assert np.array_equal(
                trial_left.user_default_rates, trial_right.user_default_rates
            )

    def test_single_trial_ignores_parallel_flag(self):
        config = CaseStudyConfig(num_users=100, num_trials=1, parallel=True)
        result = run_experiment(config)
        reference = run_trial(config, trial_index=0)
        assert np.array_equal(
            result.trials[0].user_default_rates, reference.user_default_rates
        )

    def test_max_workers_validation(self):
        with pytest.raises(ValueError):
            CaseStudyConfig(max_workers=0)
        with pytest.raises(ValueError):
            run_experiment(
                CaseStudyConfig(num_users=10, num_trials=2),
                parallel=True,
                max_workers=0,
            )

    def test_one_worker_runs_serially(self, small_config, serial_result):
        result = run_experiment(small_config, parallel=True, max_workers=1)
        for trial_left, trial_right in zip(serial_result.trials, result.trials):
            assert np.array_equal(
                trial_left.user_default_rates, trial_right.user_default_rates
            )


class TestChunkedLoopEquivalence:
    """Running the loop in chunks appends to the same columnar history."""

    def test_chunked_run_matches_single_run(self):
        from repro.core.filters import DefaultRateFilter
        from repro.core.loop import ClosedLoop
        from repro.core.population import CreditPopulation
        from repro.data.synthetic import PopulationSpec, generate_population

        def build_loop(seed: int) -> ClosedLoop:
            rng = np.random.default_rng(seed)
            population = CreditPopulation(
                population=generate_population(PopulationSpec(size=50), rng)
            )
            return ClosedLoop(
                ai_system=CreditScoringSystem(Lender(warm_up_rounds=2)),
                population=population,
                loop_filter=DefaultRateFilter(num_users=50),
            )

        rng_whole = np.random.default_rng(77)
        whole = build_loop(1).run(10, rng=rng_whole)

        # A continuation (rng=None + existing history) reuses the base the
        # loop started with, replaying the unchunked schedule exactly.
        rng_chunks = np.random.default_rng(77)
        loop = build_loop(1)
        history = loop.run(4, rng=rng_chunks)
        history = loop.run(6, history=history)

        assert history.num_steps == whole.num_steps == 10
        assert np.array_equal(whole.decisions_matrix(), history.decisions_matrix())
        assert np.array_equal(whole.actions_matrix(), history.actions_matrix())
        assert np.array_equal(
            whole.running_default_rates(), history.running_default_rates()
        )
