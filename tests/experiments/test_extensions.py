"""Tests for repro.experiments.extensions (steering E-X1 and drift E-X2)."""

from __future__ import annotations

import pytest

from repro.experiments.config import CaseStudyConfig
from repro.experiments.extensions import drift_comparison, steering_comparison


@pytest.fixture(scope="module")
def steering_result():
    return steering_comparison(CaseStudyConfig(num_users=120, num_trials=1, seed=41))


@pytest.fixture(scope="module")
def drift_result():
    return drift_comparison(CaseStudyConfig(num_users=120, num_trials=1, seed=43))


class TestSteeringComparison:
    def test_all_three_arms_are_reported(self, steering_result):
        assert set(steering_result.outcomes) == {
            "plain retraining scorecard",
            "impact steering (proportional boost)",
            "epsilon-greedy exploration",
        }

    def test_outcome_metrics_are_well_formed(self, steering_result):
        for outcome in steering_result.outcomes.values():
            assert 0.0 <= outcome.final_group_gap <= 1.0
            assert 0.0 <= outcome.final_user_gini <= 1.0
            assert 0.0 <= outcome.mean_approval_rate <= 1.0

    def test_interventions_do_not_meaningfully_reduce_access_to_credit(self, steering_result):
        plain = steering_result.outcomes["plain retraining scorecard"]
        steered = steering_result.outcomes["impact steering (proportional boost)"]
        explored = steering_result.outcomes["epsilon-greedy exploration"]
        # The loop's feedback means decisions are not pointwise comparable, so
        # the check is on the aggregate approval rate with a small slack.
        assert steered.mean_approval_rate >= plain.mean_approval_rate - 0.02
        assert explored.mean_approval_rate >= plain.mean_approval_rate - 0.02

    def test_summary_lists_every_arm(self, steering_result):
        text = steering_result.summary()
        for name in steering_result.outcomes:
            assert name in text


class TestDriftComparison:
    def test_both_arms_are_reported(self, drift_result):
        assert set(drift_result.outcomes) == {
            "retraining scorecard",
            "static scorecard (never retrained)",
        }

    def test_metrics_are_probabilities(self, drift_result):
        for outcome in drift_result.outcomes.values():
            assert 0.0 <= outcome.post_shock_default_rate <= 1.0
            assert 0.0 <= outcome.post_shock_approval_rate <= 1.0
            assert 0.0 <= outcome.final_group_gap <= 1.0

    def test_summary_mentions_the_shock_years(self, drift_result):
        text = drift_result.summary()
        assert "2008" in text and "2009" in text
