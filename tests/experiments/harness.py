"""Consolidated golden registry and differential helpers for the equivalence suites.

Five suites pin the engine's pinned random stream from different angles —
the sharded engine itself (``test_engine_equivalence``), streaming
aggregation (``test_streaming_equivalence``), shard/worker layouts
(``test_shard_equivalence``), retrain modes (``test_retrain_equivalence``)
and the trial-batched engine (``test_batch_equivalence``) — and the
planner-facing ``test_execution_equivalence`` pins every ``execution``
mode to the same stream.  They all share ONE source of truth, this module:

* :data:`ENGINE_GOLDEN` — the golden SHA-256 digests of
  ``run_experiment(CaseStudyConfig().scaled(num_users=200, num_trials=2))``.
  Re-captured exactly once since the seed commit (the intra-trial sharding
  refactor's deliberate stream break; see ``test_engine_equivalence``).
* :func:`digest` and the observed-digest builders
  (:func:`full_trial_digests`, :func:`experiment_digests`,
  :func:`group_digests`) plus their expected-subset selectors, so every
  suite hashes the same accessors the same way.
* The differential assertions (:func:`assert_experiments_identical`,
  :func:`assert_full_trials_identical`, :func:`assert_group_series_identical`)
  used to compare two runs array for array.
* :func:`execution_modes` — the planner's execution-mode axis, overridable
  per CI matrix cell with ``REPRO_TEST_EXECUTION_MODE``.

The shared fixtures (``golden_config``, ``golden_serial_result``) live in
``tests/experiments/conftest.py`` so the 200-user serial reference run is
computed once per session, not once per suite.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np

from repro.data.census import Race
from repro.experiments.config import CaseStudyConfig

#: Scale of the golden reference experiment.
GOLDEN_USERS = 200
GOLDEN_TRIALS = 2


def golden_config() -> CaseStudyConfig:
    """Return the configuration the golden digests were captured from."""
    return CaseStudyConfig().scaled(num_users=GOLDEN_USERS, num_trials=GOLDEN_TRIALS)


def digest(array: np.ndarray) -> str:
    """Return a short SHA-256 digest of an array's exact float contents."""
    data = np.ascontiguousarray(np.asarray(array, dtype=float))
    return hashlib.sha256(data.tobytes()).hexdigest()[:16]


#: Captured from the sharded engine (the pre-sharding goldens from seed
#: commit 445c387 were retired with the derived-stream break).  One set of
#: hashes pins every engine generation: serial, streaming-aggregate,
#: pooled shards, the trial-batched tensor engine, and every layout the
#: execution planner composes from them.
ENGINE_GOLDEN = {
    "trial0_decisions": "b8837abc827e91fd",
    "trial0_actions": "dbd00c78385e948a",
    "trial0_income": "d0093a48aa12b38d",
    "trial0_user_rates": "6b17e39189558b00",
    "trial0_obs_rates": "6b17e39189558b00",
    "trial0_portfolio": "112f7a712fa7a645",
    "trial0_running_actions": "b3e05cb2e044fcef",
    "trial0_approvals": "2d3ab12c55b9dd43",
    "trial0_group_BLACK": "2c7da37edcc62af4",
    "trial0_group_WHITE": "99ae0f9adbeabd21",
    "trial0_group_ASIAN": "85ada57e1f601e96",
    "trial1_decisions": "6750e1ef53c96a5c",
    "trial1_actions": "a479ea4044abc6ae",
    "trial1_income": "ba6ccea6352ea9ed",
    "trial1_user_rates": "67d1d1b8af953971",
    "trial1_obs_rates": "67d1d1b8af953971",
    "trial1_portfolio": "2121aaf952a725b1",
    "trial1_running_actions": "2ea7ffa96a1cc626",
    "trial1_approvals": "d7072999a25e09b7",
    "trial1_group_BLACK": "bd7adfa42dbd2a87",
    "trial1_group_WHITE": "b24cec3dfffb243d",
    "trial1_group_ASIAN": "4d15515f88a65170",
}


#: Every value of the ``execution`` knob, in the order the suites sweep it.
EXECUTION_MODES = ("serial", "batch", "pool", "shard", "auto")


def execution_modes() -> tuple:
    """Return the execution modes to cover, honouring the CI matrix cell.

    The consolidated-harness CI job runs one cell per mode with
    ``REPRO_TEST_EXECUTION_MODE`` set; without the variable every mode is
    covered in one process.
    """
    override = os.environ.get("REPRO_TEST_EXECUTION_MODE")
    if override:
        return (override,)
    return EXECUTION_MODES


# ----------------------------------------------------------------------
# Observed-digest builders and expected-subset selectors
# ----------------------------------------------------------------------


def portfolio_series(trial) -> np.ndarray:
    """Return the trial's portfolio-rate series in either history mode."""
    history = trial.history
    if hasattr(history, "portfolio_rate_series"):
        return history.portfolio_rate_series()
    return history.observation_series("portfolio_rate")


def full_trial_digests(trial, index: int = 0) -> dict:
    """Digest every golden-pinned series of one full-history trial."""
    history = trial.history
    observed = {
        f"trial{index}_decisions": digest(history.decisions_matrix()),
        f"trial{index}_actions": digest(history.actions_matrix()),
        f"trial{index}_income": digest(history.public_feature_matrix("income")),
        f"trial{index}_user_rates": digest(trial.user_default_rates),
        f"trial{index}_obs_rates": digest(
            history.observation_series("user_default_rates")
        ),
        f"trial{index}_portfolio": digest(
            history.observation_series("portfolio_rate")
        ),
        f"trial{index}_running_actions": digest(history.running_action_averages()),
        f"trial{index}_approvals": digest(history.approval_rates()),
    }
    for race in Race:
        observed[f"trial{index}_group_{race.name}"] = digest(
            trial.group_default_rates[race]
        )
    return observed


def experiment_digests(result) -> dict:
    """Digest every trial of a full-history experiment (all golden keys)."""
    observed = {}
    for index, trial in enumerate(result.trials):
        observed.update(full_trial_digests(trial, index))
    return observed


def group_digests(trial, index: int = 0, portfolio: bool = False) -> dict:
    """Digest the group-level series available in *both* history modes."""
    observed = {}
    for race in Race:
        observed[f"trial{index}_group_{race.name}"] = digest(
            trial.group_default_rates[race]
        )
    observed[f"trial{index}_approvals"] = digest(trial.approval_rate_series())
    if portfolio:
        observed[f"trial{index}_portfolio"] = digest(portfolio_series(trial))
    return observed


def expected_trial_digests(index: int = 0) -> dict:
    """Return the golden subset for one trial (every key)."""
    return {
        key: value
        for key, value in ENGINE_GOLDEN.items()
        if key.startswith(f"trial{index}_")
    }


def expected_group_digests(index: int = 0, portfolio: bool = False) -> dict:
    """Return the golden subset :func:`group_digests` must reproduce."""
    extras = {f"trial{index}_approvals"}
    if portfolio:
        extras.add(f"trial{index}_portfolio")
    return {
        key: value
        for key, value in ENGINE_GOLDEN.items()
        if key.startswith(f"trial{index}_group_") or key in extras
    }


# ----------------------------------------------------------------------
# Differential assertions (two runs, array for array)
# ----------------------------------------------------------------------


def assert_experiments_identical(left, right) -> None:
    """Assert two full-history experiments are bit-identical trial by trial."""
    assert len(left.trials) == len(right.trials)
    for trial_left, trial_right in zip(left.trials, right.trials):
        assert np.array_equal(
            trial_left.history.decisions_matrix(),
            trial_right.history.decisions_matrix(),
        )
        assert np.array_equal(
            trial_left.history.actions_matrix(),
            trial_right.history.actions_matrix(),
        )
        assert np.array_equal(
            trial_left.user_default_rates, trial_right.user_default_rates
        )
        assert np.array_equal(trial_left.races, trial_right.races)
        for race in Race:
            assert np.array_equal(
                trial_left.group_default_rates[race],
                trial_right.group_default_rates[race],
            )


def assert_full_trials_identical(serial_trial, other_trial) -> None:
    """Assert one full-history trial equals another across every accessor."""
    serial_history, other_history = serial_trial.history, other_trial.history
    assert np.array_equal(
        serial_history.decisions_matrix(), other_history.decisions_matrix()
    )
    assert np.array_equal(
        serial_history.actions_matrix(), other_history.actions_matrix()
    )
    assert np.array_equal(
        serial_history.public_feature_matrix("income"),
        other_history.public_feature_matrix("income"),
    )
    assert np.array_equal(
        serial_trial.user_default_rates, other_trial.user_default_rates
    )
    assert np.array_equal(
        serial_history.observation_series("user_default_rates"),
        other_history.observation_series("user_default_rates"),
    )
    assert np.array_equal(
        serial_history.observation_series("portfolio_rate"),
        other_history.observation_series("portfolio_rate"),
    )
    assert np.array_equal(
        serial_history.running_action_averages(),
        other_history.running_action_averages(),
    )
    assert np.array_equal(
        serial_history.approval_rates(), other_history.approval_rates()
    )
    assert np.array_equal(serial_trial.races, other_trial.races)


def assert_group_series_identical(serial_trial, other_trial) -> None:
    """Assert the group-level series agree bit for bit (either history mode)."""
    for race in Race:
        assert np.array_equal(
            serial_trial.group_default_rates[race],
            other_trial.group_default_rates[race],
        )
        assert np.array_equal(
            serial_trial.group_action_averages()[race],
            other_trial.group_action_averages()[race],
        )
        assert np.array_equal(
            serial_trial.group_approval_series()[race],
            other_trial.group_approval_series()[race],
        )
    assert np.array_equal(
        serial_trial.approval_rate_series(), other_trial.approval_rate_series()
    )
