"""Tests for repro.experiments.reporting."""

from __future__ import annotations

import numpy as np

from repro.experiments.reporting import (
    format_distribution_table,
    format_series_table,
    format_table,
)


class TestFormatTable:
    def test_headers_and_rows_are_rendered(self):
        text = format_table(["name", "value"], [["a", 1.0], ["b", 2.5]])
        assert "name" in text
        assert "a" in text
        assert "2.5000" in text

    def test_columns_are_aligned(self):
        text = format_table(["x", "longer_header"], [["val", 1.0]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].index("longer_header") == lines[2].index("1.0000")

    def test_custom_float_format(self):
        text = format_table(["v"], [[3.14159]], float_format="{:.2f}")
        assert "3.14" in text
        assert "3.1416" not in text

    def test_non_numeric_cells_are_stringified(self):
        text = format_table(["a"], [[None]])
        assert "None" in text


class TestFormatSeriesTable:
    def test_one_row_per_index_entry(self):
        text = format_series_table([2002, 2003], {"adr": np.array([0.1, 0.2])}, index_name="year")
        lines = text.splitlines()
        assert len(lines) == 4  # header + separator + 2 rows
        assert "year" in lines[0]
        assert "2003" in lines[3]

    def test_multiple_series_share_the_index(self):
        text = format_series_table(
            [0, 1], {"a": [1.0, 2.0], "b": [3.0, 4.0]}
        )
        assert "a" in text and "b" in text
        assert "4.0000" in text


class TestFormatDistributionTable:
    def test_percentages_by_default(self):
        text = format_distribution_table(["low", "high"], {"group": [0.25, 0.75]})
        assert "25.00" in text
        assert "75.00" in text
        assert "values in %" in text

    def test_raw_values_when_requested(self):
        text = format_distribution_table(
            ["low", "high"], {"group": [0.25, 0.75]}, as_percentage=False
        )
        assert "0.25" in text
        assert "values in %" not in text
