"""Batched IFS stepping vs. the per-user reference path.

``SignalDependentIFS.step_batch`` must be bit-identical to calling ``step``
once per row with the same generator: identical uniform-draw order,
identical ``Generator.choice`` inversion, identical map images.  The same
holds one level up for ``IFSPopulation.respond``'s vectorized path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.population import IFSPopulation
from repro.markov.ifs import SignalDependentIFS
from repro.markov.maps import AffineMap, FunctionMap


def affine_user() -> SignalDependentIFS:
    return SignalDependentIFS(
        transition_maps=(AffineMap.scalar(0.5, 0.0), AffineMap.scalar(0.5, 0.5)),
        transition_probabilities=lambda signal: [0.8, 0.2] if signal > 0.5 else [0.3, 0.7],
        output_maps=(AffineMap.scalar(1.0, 0.0), AffineMap.scalar(0.0, 1.0)),
        output_probabilities=lambda signal: [0.6, 0.4] if signal > 0.5 else [0.1, 0.9],
    )


def function_map_user() -> SignalDependentIFS:
    return SignalDependentIFS(
        transition_maps=(
            FunctionMap(lambda x: 0.5 * x, name="shrink"),
            FunctionMap(lambda x: 0.5 * x + 0.5, name="shift"),
        ),
        transition_probabilities=lambda signal: [0.5, 0.5],
        output_maps=(FunctionMap(lambda x: x, name="echo"),),
        output_probabilities=lambda signal: [1.0],
    )


def planar_user() -> SignalDependentIFS:
    rotate = AffineMap(
        matrix=np.array([[0.4, -0.3], [0.3, 0.4]]), offset=np.array([0.1, 0.0])
    )
    contract = AffineMap(
        matrix=np.array([[0.5, 0.0], [0.0, 0.25]]), offset=np.array([0.0, 0.2])
    )
    return SignalDependentIFS(
        transition_maps=(rotate, contract),
        transition_probabilities=lambda signal: [0.7, 0.3] if signal > 0 else [0.2, 0.8],
        output_maps=(rotate, contract),
        output_probabilities=lambda signal: [0.5, 0.5],
    )


def serial_reference(user, states, signals, generator):
    """Advance each row with the scalar ``step`` path (the seed semantics)."""
    next_states = np.empty_like(states)
    actions = np.empty(states.shape[0], dtype=float)
    for index in range(states.shape[0]):
        state, action = user.step(states[index], float(signals[index]), generator)
        next_states[index] = state
        actions[index] = float(np.atleast_1d(action)[0])
    return next_states, actions


class TestStepBatch:
    @pytest.mark.parametrize(
        "factory,dim", [(affine_user, 1), (function_map_user, 1), (planar_user, 2)]
    )
    def test_bit_identical_to_serial_steps(self, factory, dim):
        user = factory()
        count = 64
        rng = np.random.default_rng(1234)
        states = rng.normal(size=(count, dim))
        signals = (np.arange(count) % 2).astype(float)
        gen_batch = np.random.default_rng(99)
        gen_serial = np.random.default_rng(99)
        batch_states, batch_actions = user.step_batch(states, signals, gen_batch)
        serial_states, serial_actions = serial_reference(
            user, states, signals, gen_serial
        )
        assert np.array_equal(batch_states, serial_states)
        assert np.array_equal(batch_actions, serial_actions)
        # Both paths consumed the same amount of the stream.
        assert gen_batch.random() == gen_serial.random()

    def test_nan_signals_follow_the_per_user_path(self):
        """NaN decisions must select maps exactly like the scalar loop does."""
        user = affine_user()
        count = 12
        states = np.linspace(0.0, 1.0, count)[:, None].copy()
        signals = np.where(np.arange(count) % 3 == 0, np.nan, 1.0)
        gen_batch = np.random.default_rng(5)
        gen_serial = np.random.default_rng(5)
        batch_states, batch_actions = user.step_batch(states, signals, gen_batch)
        serial_states, serial_actions = serial_reference(
            user, states, signals, gen_serial
        )
        assert np.array_equal(batch_states, serial_states)
        assert np.array_equal(batch_actions, serial_actions)

    def test_scalar_signal_broadcasts(self):
        user = affine_user()
        states = np.zeros((5, 1))
        next_states, actions = user.step_batch(states, 1.0, np.random.default_rng(0))
        assert next_states.shape == (5, 1)
        assert actions.shape == (5,)

    def test_multi_step_orbit_stays_identical(self):
        user = affine_user()
        count = 16
        states_batch = np.linspace(0.0, 1.0, count)[:, None].copy()
        states_serial = states_batch.copy()
        gen_batch = np.random.default_rng(7)
        gen_serial = np.random.default_rng(7)
        signals = np.ones(count)
        for _ in range(25):
            states_batch, actions_batch = user.step_batch(
                states_batch, signals, gen_batch
            )
            states_serial, actions_serial = serial_reference(
                user, states_serial, signals, gen_serial
            )
            assert np.array_equal(states_batch, states_serial)
            assert np.array_equal(actions_batch, actions_serial)


class TestApplyBatch:
    def test_affine_apply_batch_matches_per_row_call(self):
        rng = np.random.default_rng(3)
        for dim in (1, 2, 4):
            affine = AffineMap(
                matrix=rng.normal(size=(dim, dim)), offset=rng.normal(size=dim)
            )
            batch = rng.normal(size=(20, dim))
            expected = np.stack([affine(batch[i]) for i in range(batch.shape[0])])
            assert np.array_equal(affine.apply_batch(batch), expected)

    def test_function_map_apply_batch_matches_per_row_call(self):
        mapper = FunctionMap(lambda x: np.sin(x) + 1.0, name="wave")
        batch = np.linspace(-2.0, 2.0, 12)[:, None]
        expected = np.stack([mapper(batch[i]) for i in range(batch.shape[0])])
        assert np.array_equal(mapper.apply_batch(batch), expected)


class TestPopulationBatchPath:
    def test_shared_user_population_uses_batch_and_matches_loop(self):
        count = 40
        shared = affine_user()
        initial = [np.array([0.02 * i]) for i in range(count)]
        batched = IFSPopulation(users=[shared] * count, initial_states=initial)
        assert batched._state_matrix is not None  # vectorized path engaged

        looped = IFSPopulation(
            users=[shared] * count, initial_states=initial, vectorize=False
        )
        assert looped._state_matrix is None  # per-user reference loop

        gen_batch = np.random.default_rng(11)
        gen_loop = np.random.default_rng(11)
        decisions = (np.arange(count) % 3 == 0).astype(float)
        for k in range(12):
            actions_batch = batched.respond(decisions, k, gen_batch)
            actions_loop = looped.respond(decisions, k, gen_loop)
            assert np.array_equal(actions_batch, actions_loop)
        assert np.array_equal(np.stack(batched.states), np.stack(looped.states))

    def test_heterogeneous_population_falls_back(self):
        population = IFSPopulation(
            users=[affine_user(), affine_user()],
            initial_states=[np.array([0.0]), np.array([1.0])],
        )
        assert population._state_matrix is None
        actions = population.respond(
            np.array([1.0, 0.0]), 0, np.random.default_rng(2)
        )
        assert actions.shape == (2,)

    def test_states_are_copies_on_batch_path(self):
        shared = affine_user()
        population = IFSPopulation(
            users=[shared, shared],
            initial_states=[np.array([0.3]), np.array([0.4])],
        )
        states = population.states
        states[0][0] = 99.0
        assert population.states[0][0] == pytest.approx(0.3)


def _shared_transition_probabilities(signal):
    return [0.8, 0.2] if signal > 0.5 else [0.3, 0.7]


def _shared_output_probabilities(signal):
    return [0.6, 0.4] if signal > 0.5 else [0.1, 0.9]


def structural_user(shift: float) -> SignalDependentIFS:
    """A user built from *fresh* map objects but shared probability functions."""
    return SignalDependentIFS(
        transition_maps=(AffineMap.scalar(0.5, 0.0), AffineMap.scalar(0.5, shift)),
        transition_probabilities=_shared_transition_probabilities,
        output_maps=(AffineMap.scalar(1.0, 0.0), AffineMap.scalar(0.0, 1.0)),
        output_probabilities=_shared_output_probabilities,
    )


class TestStructuralBatching:
    """Distinct-but-structurally-equal users share one vectorized batch."""

    def test_structural_key_groups_equal_users(self):
        assert structural_user(0.5).structural_key() == structural_user(0.5).structural_key()
        assert structural_user(0.5).structural_key() != structural_user(0.25).structural_key()

    def test_mixed_population_batches_and_matches_per_user_loop(self):
        count = 90
        # Two structural kinds, every instance distinct, interleaved 2:1.
        users = [structural_user(0.5 if i % 3 else 0.25) for i in range(count)]
        initial = [np.array([0.01 * (i % 11)]) for i in range(count)]
        batched = IFSPopulation(users=list(users), initial_states=initial)
        assert batched._state_matrix is not None  # mixed populations batch now
        assert len(batched._batch_groups) == 2

        looped = IFSPopulation(
            users=list(users), initial_states=initial, vectorize=False
        )
        gen_batch = np.random.default_rng(21)
        gen_loop = np.random.default_rng(21)
        decisions = (np.arange(count) % 2).astype(float)
        for k in range(8):
            actions_batch = batched.respond(decisions, k, gen_batch)
            actions_loop = looped.respond(decisions, k, gen_loop)
            assert np.array_equal(actions_batch, actions_loop)
        assert np.array_equal(np.stack(batched.states), np.stack(looped.states))

    def test_population_without_sharing_stays_on_the_loop_path(self):
        # Fresh lambdas per user: no two users share a structural key, so
        # batching would degenerate to one-row batches; the loop path wins.
        population = IFSPopulation(
            users=[affine_user() for _ in range(5)],
            initial_states=[np.array([0.1 * i]) for i in range(5)],
        )
        assert population._state_matrix is None

    def test_pre_drawn_uniforms_match_internal_draws(self):
        user = structural_user(0.5)
        states = np.linspace(0.0, 1.0, 12)[:, None]
        signals = (np.arange(12) % 2).astype(float)
        gen_a = np.random.default_rng(4)
        gen_b = np.random.default_rng(4)
        internal = user.step_batch(states, signals, gen_a)
        external = user.step_batch(
            states, signals, uniforms=gen_b.random((12, 2))
        )
        assert np.array_equal(internal[0], external[0])
        assert np.array_equal(internal[1], external[1])

    def test_uniforms_shape_is_validated(self):
        user = structural_user(0.5)
        with pytest.raises(ValueError):
            user.step_batch(
                np.zeros((3, 1)), np.zeros(3), uniforms=np.zeros((2, 2))
            )
