"""Tests for repro.markov.ifs (iterated function systems and the user model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.ifs import IteratedFunctionSystem, SignalDependentIFS
from repro.markov.maps import AffineMap, FunctionMap


def simple_ifs() -> IteratedFunctionSystem:
    return IteratedFunctionSystem(
        maps=[AffineMap.scalar(0.5, 0.0), AffineMap.scalar(0.5, 0.5)],
        probabilities=[0.5, 0.5],
    )


def bernoulli_user(probability_if_approved: float = 0.8) -> SignalDependentIFS:
    """A user whose action is 1 w.p. p when approved (signal 1) and 0 otherwise."""
    return SignalDependentIFS(
        transition_maps=(AffineMap.scalar(1.0, 0.0),),
        transition_probabilities=lambda signal: [1.0],
        output_maps=(
            FunctionMap(lambda x: np.array([1.0]), name="repay"),
            FunctionMap(lambda x: np.array([0.0]), name="default"),
        ),
        output_probabilities=lambda signal: (
            [probability_if_approved, 1.0 - probability_if_approved]
            if signal >= 0.5
            else [0.0, 1.0]
        ),
    )


class TestIteratedFunctionSystem:
    def test_rejects_empty_map_list(self):
        with pytest.raises(ValueError):
            IteratedFunctionSystem(maps=[], probabilities=[])

    def test_rejects_probability_length_mismatch(self):
        with pytest.raises(ValueError):
            IteratedFunctionSystem(maps=[AffineMap.scalar(0.5, 0.0)], probabilities=[0.5, 0.5])

    def test_fixed_probabilities_are_returned(self):
        ifs = simple_ifs()
        np.testing.assert_allclose(ifs.probabilities_at(np.array([0.0])), [0.5, 0.5])

    def test_place_dependent_probabilities(self):
        ifs = IteratedFunctionSystem(
            maps=[AffineMap.scalar(0.5, 0.0), AffineMap.scalar(0.5, 0.5)],
            probabilities=lambda x: [float(x[0]), 1.0 - float(x[0])],
        )
        np.testing.assert_allclose(ifs.probabilities_at(np.array([0.3])), [0.3, 0.7])

    def test_place_dependent_length_mismatch_is_rejected(self):
        ifs = IteratedFunctionSystem(
            maps=[AffineMap.scalar(0.5, 0.0), AffineMap.scalar(0.5, 0.5)],
            probabilities=lambda x: [1.0],
        )
        with pytest.raises(ValueError):
            ifs.probabilities_at(np.array([0.0]))

    def test_step_applies_one_of_the_maps(self, rng):
        ifs = simple_ifs()
        next_state, index = ifs.step(np.array([1.0]), rng)
        assert index in (0, 1)
        assert next_state[0] in (0.5, 1.0)

    def test_orbit_shape_and_reproducibility(self):
        ifs = simple_ifs()
        a = ifs.orbit(np.array([0.2]), 40, 11)
        b = ifs.orbit(np.array([0.2]), 40, 11)
        assert a.shape == (41, 1)
        np.testing.assert_array_equal(a, b)

    def test_orbit_converges_to_unit_interval(self):
        ifs = simple_ifs()
        orbit = ifs.orbit(np.array([100.0]), 300, 2)
        assert np.all((orbit[100:] >= -1e-9) & (orbit[100:] <= 1.0 + 1e-9))

    def test_negative_length_is_rejected(self):
        with pytest.raises(ValueError):
            simple_ifs().orbit(np.array([0.0]), -5)

    def test_average_contraction_estimate(self):
        ifs = simple_ifs()
        pairs = [(np.array([0.0]), np.array([1.0])), (np.array([-1.0]), np.array([2.0]))]
        assert ifs.average_contraction_estimate(pairs) == pytest.approx(0.5)


class TestSignalDependentIFS:
    def test_rejects_empty_maps(self):
        with pytest.raises(ValueError):
            SignalDependentIFS(
                transition_maps=(),
                transition_probabilities=lambda s: [],
                output_maps=(AffineMap.scalar(1.0, 0.0),),
                output_probabilities=lambda s: [1.0],
            )

    def test_step_returns_state_and_action(self, rng):
        user = bernoulli_user()
        next_state, action = user.step(np.array([0.0]), 1.0, rng)
        assert next_state.shape == (1,)
        assert float(action[0]) in (0.0, 1.0)

    def test_denied_user_never_acts(self):
        user = bernoulli_user()
        actions = [float(user.step(np.array([0.0]), 0.0, seed)[1][0]) for seed in range(30)]
        assert all(action == 0.0 for action in actions)

    def test_approved_user_acts_with_roughly_the_right_frequency(self):
        user = bernoulli_user(probability_if_approved=0.8)
        generator = np.random.default_rng(0)
        actions = [float(user.step(np.array([0.0]), 1.0, generator)[1][0]) for _ in range(2000)]
        assert np.mean(actions) == pytest.approx(0.8, abs=0.03)

    def test_trajectory_shapes(self, rng):
        user = bernoulli_user()
        states, actions = user.trajectory(np.array([0.0]), [1.0, 1.0, 0.0], rng)
        assert states.shape == (4, 1)
        assert actions.shape == (3, 1)

    def test_empty_signal_sequence_gives_empty_actions(self, rng):
        user = bernoulli_user()
        states, actions = user.trajectory(np.array([0.0]), [], rng)
        assert states.shape == (1, 1)
        assert actions.shape[0] == 0

    def test_probability_vectors_must_match_map_counts(self):
        broken = SignalDependentIFS(
            transition_maps=(AffineMap.scalar(1.0, 0.0),),
            transition_probabilities=lambda s: [0.5, 0.5],
            output_maps=(AffineMap.scalar(1.0, 0.0),),
            output_probabilities=lambda s: [1.0],
        )
        with pytest.raises(ValueError):
            broken.step(np.array([0.0]), 1.0, 0)

    def test_state_transitions_follow_selected_map(self):
        doubling_user = SignalDependentIFS(
            transition_maps=(AffineMap.scalar(2.0, 0.0),),
            transition_probabilities=lambda s: [1.0],
            output_maps=(AffineMap.scalar(1.0, 0.0),),
            output_probabilities=lambda s: [1.0],
        )
        next_state, action = doubling_user.step(np.array([3.0]), 1.0, 0)
        assert next_state[0] == pytest.approx(6.0)
        # The action is computed from the *current* state (equation 9b).
        assert action[0] == pytest.approx(3.0)
