"""Tests for repro.markov.stability (incremental ISS utilities)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.stability import (
    estimate_contraction_rate,
    incremental_iss_diagnostic,
    is_class_k,
    is_class_kl,
)


class TestClassK:
    def test_linear_function_is_class_k(self):
        assert is_class_k(lambda s: 2.0 * s)

    def test_square_root_is_class_k(self):
        assert is_class_k(lambda s: np.sqrt(s))

    def test_constant_is_not_class_k(self):
        assert not is_class_k(lambda s: 1.0)

    def test_nonzero_at_origin_is_not_class_k(self):
        assert not is_class_k(lambda s: s + 1.0)

    def test_decreasing_function_is_not_class_k(self):
        assert not is_class_k(lambda s: -s)

    def test_grid_must_start_at_zero(self):
        with pytest.raises(ValueError):
            is_class_k(lambda s: s, grid=[1.0, 2.0])


class TestClassKL:
    def test_exponentially_decaying_linear_is_class_kl(self):
        assert is_class_kl(lambda s, t: s * np.exp(-0.5 * t))

    def test_non_decaying_is_not_class_kl(self):
        assert not is_class_kl(lambda s, t: s)

    def test_increasing_in_time_is_not_class_kl(self):
        assert not is_class_kl(lambda s, t: s * (1.0 + 0.1 * t))


class TestContractionRate:
    def test_linear_contraction(self):
        rate = estimate_contraction_rate(
            lambda x, u: 0.5 * x + u, state_dimension=2, input_dimension=2, rng=0
        )
        assert rate == pytest.approx(0.5, abs=1e-9)

    def test_expansion_is_detected(self):
        rate = estimate_contraction_rate(
            lambda x, u: 2.0 * x, state_dimension=1, input_dimension=1, rng=0
        )
        assert rate == pytest.approx(2.0, abs=1e-9)

    def test_rejects_non_positive_sample_count(self):
        with pytest.raises(ValueError):
            estimate_contraction_rate(
                lambda x, u: x, state_dimension=1, input_dimension=1, num_samples=0
            )


class TestIncrementalISSDiagnostic:
    def test_stable_linear_system_passes(self):
        diagnostic = incremental_iss_diagnostic(
            lambda x, u: 0.8 * x + 0.1 * u,
            state_dimension=1,
            input_dimension=1,
            horizon=300,
            rng=1,
        )
        assert diagnostic.contraction_rate == pytest.approx(0.8, abs=1e-6)
        assert diagnostic.trajectories_converge
        assert diagnostic.consistent_with_incremental_iss
        assert diagnostic.input_gain == pytest.approx(0.1, abs=1e-6)

    def test_marginally_stable_system_fails(self):
        diagnostic = incremental_iss_diagnostic(
            lambda x, u: x + 0.0 * u,
            state_dimension=1,
            input_dimension=1,
            horizon=100,
            rng=1,
        )
        assert not diagnostic.consistent_with_incremental_iss

    def test_unstable_system_fails(self):
        diagnostic = incremental_iss_diagnostic(
            lambda x, u: 1.2 * x + u,
            state_dimension=1,
            input_dimension=1,
            horizon=60,
            rng=2,
        )
        assert diagnostic.contraction_rate > 1.0
        assert not diagnostic.consistent_with_incremental_iss

    def test_multidimensional_system(self):
        matrix = np.array([[0.5, 0.1], [0.0, 0.6]])
        diagnostic = incremental_iss_diagnostic(
            lambda x, u: matrix @ x + u,
            state_dimension=2,
            input_dimension=2,
            horizon=200,
            rng=3,
        )
        assert diagnostic.consistent_with_incremental_iss
