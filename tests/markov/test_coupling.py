"""Tests for repro.markov.coupling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.coupling import coupling_distance_profile, coupling_time


def contractive_step(state: np.ndarray, generator: np.random.Generator) -> np.ndarray:
    """x -> x/2 + Bernoulli(1/2)/2 — the classical contractive random map."""
    return 0.5 * state + 0.5 * generator.integers(0, 2)


def random_walk_step(state: np.ndarray, generator: np.random.Generator) -> np.ndarray:
    """x -> x + noise: never forgets its initial condition under coupling."""
    return state + generator.normal()


class TestCouplingDistanceProfile:
    def test_contractive_system_distance_halves_each_step(self):
        profile = coupling_distance_profile(
            contractive_step, np.array([0.0]), np.array([8.0]), horizon=6, rng=0
        )
        np.testing.assert_allclose(profile[:4], [8.0, 4.0, 2.0, 1.0])

    def test_random_walk_distance_is_constant_under_synchronous_coupling(self):
        profile = coupling_distance_profile(
            random_walk_step, np.array([0.0]), np.array([3.0]), horizon=20, rng=1
        )
        np.testing.assert_allclose(profile, 3.0)

    def test_profile_length_is_horizon_plus_one(self):
        profile = coupling_distance_profile(
            contractive_step, np.array([0.0]), np.array([1.0]), horizon=10, rng=2
        )
        assert profile.shape == (11,)

    def test_negative_horizon_is_rejected(self):
        with pytest.raises(ValueError):
            coupling_distance_profile(
                contractive_step, np.array([0.0]), np.array([1.0]), horizon=-1
            )

    def test_identical_initial_states_stay_identical(self):
        profile = coupling_distance_profile(
            contractive_step, np.array([2.0]), np.array([2.0]), horizon=10, rng=3
        )
        np.testing.assert_allclose(profile, 0.0)


class TestCouplingTime:
    def test_contractive_system_couples_numerically(self):
        profile = coupling_distance_profile(
            contractive_step, np.array([0.0]), np.array([1.0]), horizon=100, rng=4
        )
        time = coupling_time(profile, tolerance=1e-9)
        assert time is not None
        assert time <= 60

    def test_random_walk_never_couples(self):
        profile = coupling_distance_profile(
            random_walk_step, np.array([0.0]), np.array([5.0]), horizon=50, rng=5
        )
        assert coupling_time(profile, tolerance=1e-6) is None

    def test_immediate_coupling_is_step_zero(self):
        assert coupling_time([0.0, 0.0, 0.0]) == 0
