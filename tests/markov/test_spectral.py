"""Tests for repro.markov.spectral (spectral gap and mixing time)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.spectral import mixing_time_upper_bound, spectral_diagnostics


def two_state_chain(p: float, q: float) -> np.ndarray:
    """Return the 2-state chain that flips 0->1 w.p. p and 1->0 w.p. q."""
    return np.array([[1.0 - p, p], [q, 1.0 - q]])


class TestSpectralDiagnostics:
    def test_two_state_chain_slem_is_known_in_closed_form(self):
        # Eigenvalues of the 2-state chain are 1 and 1 - p - q.
        diagnostics = spectral_diagnostics(two_state_chain(0.3, 0.2))
        assert diagnostics.second_largest_modulus == pytest.approx(0.5, abs=1e-9)
        assert diagnostics.spectral_gap == pytest.approx(0.5, abs=1e-9)
        assert diagnostics.relaxation_time == pytest.approx(2.0, abs=1e-9)
        assert diagnostics.geometrically_ergodic

    def test_stationary_distribution_is_included(self):
        diagnostics = spectral_diagnostics(two_state_chain(0.1, 0.4))
        np.testing.assert_allclose(diagnostics.stationary, [0.8, 0.2], atol=1e-6)

    def test_periodic_chain_has_zero_gap(self):
        flip = np.array([[0.0, 1.0], [1.0, 0.0]])
        diagnostics = spectral_diagnostics(flip)
        assert diagnostics.spectral_gap == pytest.approx(0.0, abs=1e-9)
        assert not diagnostics.geometrically_ergodic
        assert diagnostics.relaxation_time == float("inf")

    def test_reducible_chain_has_zero_gap(self):
        identity = np.eye(2)
        assert spectral_diagnostics(identity).spectral_gap == pytest.approx(0.0, abs=1e-9)

    def test_faster_chains_have_larger_gaps(self):
        slow = spectral_diagnostics(two_state_chain(0.05, 0.05))
        fast = spectral_diagnostics(two_state_chain(0.45, 0.45))
        assert fast.spectral_gap > slow.spectral_gap

    def test_rejects_non_square_matrices(self):
        with pytest.raises(ValueError):
            spectral_diagnostics(np.ones((2, 3)) / 3.0)

    def test_rejects_non_stochastic_matrices(self):
        with pytest.raises(ValueError):
            spectral_diagnostics(np.array([[0.5, 0.4], [0.5, 0.5]]))

    @given(
        st.floats(0.05, 0.95),
        st.floats(0.05, 0.95),
    )
    @settings(max_examples=50, deadline=None)
    def test_gap_matches_the_closed_form_for_two_states(self, p, q):
        diagnostics = spectral_diagnostics(two_state_chain(p, q))
        assert diagnostics.second_largest_modulus == pytest.approx(abs(1.0 - p - q), abs=1e-9)


class TestMixingTimeUpperBound:
    def test_bound_is_finite_for_an_ergodic_chain(self):
        bound = mixing_time_upper_bound(two_state_chain(0.3, 0.3))
        assert np.isfinite(bound)
        assert bound > 0

    def test_bound_is_infinite_for_a_periodic_chain(self):
        flip = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert mixing_time_upper_bound(flip) == float("inf")

    def test_slower_chains_have_larger_bounds(self):
        slow = mixing_time_upper_bound(two_state_chain(0.05, 0.05))
        fast = mixing_time_upper_bound(two_state_chain(0.45, 0.45))
        assert slow > fast

    def test_smaller_epsilon_means_a_larger_bound(self):
        chain = two_state_chain(0.3, 0.3)
        assert mixing_time_upper_bound(chain, epsilon=0.01) > mixing_time_upper_bound(
            chain, epsilon=0.25
        )

    def test_rejects_invalid_epsilon(self):
        with pytest.raises(ValueError):
            mixing_time_upper_bound(two_state_chain(0.3, 0.3), epsilon=1.5)
