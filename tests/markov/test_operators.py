"""Tests for repro.markov.operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.maps import AffineMap, FunctionMap
from repro.markov.operators import MarkovOperator, stationary_distribution, transition_matrix
from repro.markov.system import MarkovEdge, MarkovSystem


def finite_two_state_system(p_stay: float = 0.7) -> MarkovSystem:
    """A two-state chain on {0, 1}: stay with probability p_stay, flip otherwise."""
    stay = FunctionMap(lambda x: x, name="stay")
    flip = FunctionMap(lambda x: 1.0 - x, name="flip")
    return MarkovSystem(
        num_vertices=2,
        edges=[
            MarkovEdge(0, 0, stay, p_stay),
            MarkovEdge(0, 1, flip, 1.0 - p_stay),
            MarkovEdge(1, 1, stay, p_stay),
            MarkovEdge(1, 0, flip, 1.0 - p_stay),
        ],
        vertex_of_state=lambda state: int(round(float(state[0]))),
    )


class TestMarkovOperator:
    def test_apply_to_function_is_expected_value(self):
        system = finite_two_state_system(0.7)
        operator = MarkovOperator(system)
        # f(x) = x: P f(0) = 0.7*0 + 0.3*1 = 0.3
        value = operator.apply_to_function(lambda x: float(x[0]), np.array([0.0]))
        assert value == pytest.approx(0.3)

    def test_apply_to_constant_function_is_the_constant(self):
        system = finite_two_state_system(0.5)
        operator = MarkovOperator(system)
        assert operator.apply_to_function(lambda x: 4.0, np.array([1.0])) == pytest.approx(4.0)

    def test_push_forward_preserves_particle_count(self, rng):
        system = finite_two_state_system()
        operator = MarkovOperator(system)
        particles = np.zeros((50, 1))
        pushed = operator.push_forward_particles(particles, rng)
        assert pushed.shape == (50, 1)
        assert set(np.unique(pushed)).issubset({0.0, 1.0})


class TestTransitionMatrix:
    def test_two_state_chain_matrix(self):
        system = finite_two_state_system(0.7)
        matrix = transition_matrix([np.array([0.0]), np.array([1.0])], system)
        np.testing.assert_allclose(matrix, [[0.7, 0.3], [0.3, 0.7]])

    def test_rows_sum_to_one(self):
        system = finite_two_state_system(0.25)
        matrix = transition_matrix([np.array([0.0]), np.array([1.0])], system)
        np.testing.assert_allclose(matrix.sum(axis=1), [1.0, 1.0])

    def test_unlisted_image_state_is_rejected(self):
        shifted = MarkovSystem(
            num_vertices=1,
            edges=[MarkovEdge(0, 0, AffineMap.scalar(1.0, 0.37), 1.0)],
        )
        with pytest.raises(ValueError):
            transition_matrix([np.array([0.0])], shifted)

    def test_empty_state_list_is_rejected(self):
        system = finite_two_state_system()
        with pytest.raises(ValueError):
            transition_matrix([], system)


class TestStationaryDistribution:
    def test_symmetric_chain_has_uniform_stationary_distribution(self):
        matrix = np.array([[0.7, 0.3], [0.3, 0.7]])
        np.testing.assert_allclose(stationary_distribution(matrix), [0.5, 0.5], atol=1e-8)

    def test_asymmetric_chain(self):
        matrix = np.array([[0.9, 0.1], [0.5, 0.5]])
        pi = stationary_distribution(matrix)
        np.testing.assert_allclose(pi @ matrix, pi, atol=1e-8)
        assert pi[0] > pi[1]

    def test_identity_matrix_returns_some_stationary_vector(self):
        pi = stationary_distribution(np.eye(3))
        np.testing.assert_allclose(pi @ np.eye(3), pi)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            stationary_distribution(np.ones((2, 3)) / 3)

    def test_rejects_non_stochastic_rows(self):
        with pytest.raises(ValueError):
            stationary_distribution(np.array([[0.5, 0.2], [0.3, 0.7]]))

    def test_three_state_birth_death_chain(self):
        matrix = np.array(
            [
                [0.5, 0.5, 0.0],
                [0.25, 0.5, 0.25],
                [0.0, 0.5, 0.5],
            ]
        )
        pi = stationary_distribution(matrix)
        np.testing.assert_allclose(pi @ matrix, pi, atol=1e-8)
        np.testing.assert_allclose(pi, [0.25, 0.5, 0.25], atol=1e-6)
