"""Tests for repro.markov.system (Markov systems)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.maps import AffineMap
from repro.markov.system import MarkovEdge, MarkovSystem


def two_map_contractive_system() -> MarkovSystem:
    """Single-vertex system: x -> x/2 or x -> x/2 + 1/2 with equal probability."""
    return MarkovSystem(
        num_vertices=1,
        edges=[
            MarkovEdge(0, 0, AffineMap.scalar(0.5, 0.0), 0.5, label="low"),
            MarkovEdge(0, 0, AffineMap.scalar(0.5, 0.5), 0.5, label="high"),
        ],
    )


def two_vertex_cycle_system() -> MarkovSystem:
    """Two vertices connected in a cycle (periodic, not aperiodic)."""
    return MarkovSystem(
        num_vertices=2,
        edges=[
            MarkovEdge(0, 1, AffineMap.scalar(0.5, 1.0), 1.0),
            MarkovEdge(1, 0, AffineMap.scalar(0.5, -1.0), 1.0),
        ],
        vertex_of_state=lambda state: 0 if state[0] <= 0 else 1,
    )


class TestConstruction:
    def test_rejects_empty_edge_list(self):
        with pytest.raises(ValueError):
            MarkovSystem(num_vertices=1, edges=[])

    def test_rejects_vertex_out_of_range(self):
        with pytest.raises(ValueError):
            MarkovSystem(
                num_vertices=1,
                edges=[MarkovEdge(0, 3, AffineMap.scalar(0.5, 0.0), 1.0)],
            )

    def test_rejects_vertex_without_outgoing_edge(self):
        with pytest.raises(ValueError, match="no outgoing edge"):
            MarkovSystem(
                num_vertices=2,
                edges=[MarkovEdge(0, 0, AffineMap.scalar(0.5, 0.0), 1.0)],
            )

    def test_rejects_non_positive_vertex_count(self):
        with pytest.raises(ValueError):
            MarkovSystem(num_vertices=0, edges=[])


class TestAdjacencyAndProbabilities:
    def test_adjacency_matrix_of_single_vertex_self_loops(self):
        system = two_map_contractive_system()
        np.testing.assert_array_equal(system.adjacency_matrix(), [[1.0]])

    def test_adjacency_matrix_of_cycle(self):
        system = two_vertex_cycle_system()
        np.testing.assert_array_equal(
            system.adjacency_matrix(), [[0.0, 1.0], [1.0, 0.0]]
        )

    def test_edge_probabilities_sum_to_one(self, rng):
        system = two_map_contractive_system()
        probabilities = system.edge_probabilities(np.array([0.3]))
        assert probabilities.sum() == pytest.approx(1.0)

    def test_place_dependent_probabilities(self):
        system = MarkovSystem(
            num_vertices=1,
            edges=[
                MarkovEdge(0, 0, AffineMap.scalar(0.5, 0.0), lambda x: float(x[0])),
                MarkovEdge(0, 0, AffineMap.scalar(0.5, 0.5), lambda x: 1.0 - float(x[0])),
            ],
        )
        probabilities = system.edge_probabilities(np.array([0.25]))
        np.testing.assert_allclose(probabilities, [0.25, 0.75])

    def test_negative_probability_is_rejected(self):
        system = MarkovSystem(
            num_vertices=1,
            edges=[
                MarkovEdge(0, 0, AffineMap.scalar(0.5, 0.0), lambda x: -0.5),
                MarkovEdge(0, 0, AffineMap.scalar(0.5, 0.5), lambda x: 1.5),
            ],
        )
        with pytest.raises(ValueError):
            system.edge_probabilities(np.array([0.0]))

    def test_all_zero_probabilities_are_rejected(self):
        system = MarkovSystem(
            num_vertices=1,
            edges=[MarkovEdge(0, 0, AffineMap.scalar(0.5, 0.0), lambda x: 0.0)],
        )
        with pytest.raises(ValueError, match="no admissible edge"):
            system.edge_probabilities(np.array([0.0]))


class TestSimulation:
    def test_step_returns_state_and_edge(self, rng):
        system = two_map_contractive_system()
        next_state, edge = system.step(np.array([1.0]), rng)
        assert next_state.shape == (1,)
        assert edge.label in {"low", "high"}

    def test_orbit_has_requested_length(self, rng):
        system = two_map_contractive_system()
        orbit = system.orbit(np.array([0.0]), 50, rng)
        assert orbit.shape == (51, 1)

    def test_orbit_is_reproducible_with_seed(self):
        system = two_map_contractive_system()
        a = system.orbit(np.array([0.0]), 30, 5)
        b = system.orbit(np.array([0.0]), 30, 5)
        np.testing.assert_array_equal(a, b)

    def test_orbit_of_contractive_system_stays_bounded(self):
        system = two_map_contractive_system()
        orbit = system.orbit(np.array([10.0]), 200, 3)
        assert np.all(np.abs(orbit[50:]) <= 1.5)

    def test_negative_orbit_length_is_rejected(self):
        system = two_map_contractive_system()
        with pytest.raises(ValueError):
            system.orbit(np.array([0.0]), -1)

    def test_cycle_system_alternates_vertices(self):
        system = two_vertex_cycle_system()
        state = np.array([-1.0])
        vertices = [system.vertex_of(state)]
        for _ in range(5):
            state, _ = system.step(state, 1)
            vertices.append(system.vertex_of(state))
        assert vertices[:4] == [0, 1, 0, 1]


class TestAverageContractivity:
    def test_contractive_system_has_factor_below_one(self):
        system = two_map_contractive_system()
        pairs = [(np.array([x]), np.array([y])) for x, y in [(0.0, 1.0), (-2.0, 3.0)]]
        assert system.average_contractivity(pairs) == pytest.approx(0.5)

    def test_expanding_system_has_factor_above_one(self):
        system = MarkovSystem(
            num_vertices=1,
            edges=[MarkovEdge(0, 0, AffineMap.scalar(2.0, 0.0), 1.0)],
        )
        pairs = [(np.array([0.0]), np.array([1.0]))]
        assert system.average_contractivity(pairs) == pytest.approx(2.0)

    def test_identical_pairs_are_ignored(self):
        system = two_map_contractive_system()
        assert system.average_contractivity([(np.array([1.0]), np.array([1.0]))]) == 0.0

    def test_pairs_in_different_cells_are_rejected(self):
        system = two_vertex_cycle_system()
        with pytest.raises(ValueError):
            system.average_contractivity([(np.array([-1.0]), np.array([1.0]))])
