"""Tests for repro.markov.maps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.maps import AffineMap, FunctionMap


class TestAffineMap:
    def test_scalar_constructor_and_call(self):
        mapping = AffineMap.scalar(0.5, 1.0)
        np.testing.assert_allclose(mapping(np.array([2.0])), [2.0])

    def test_matrix_vector_form(self):
        mapping = AffineMap(matrix=np.array([[0.0, 1.0], [1.0, 0.0]]), offset=np.zeros(2))
        np.testing.assert_allclose(mapping(np.array([1.0, 2.0])), [2.0, 1.0])

    def test_scalar_input_is_promoted(self):
        mapping = AffineMap.scalar(2.0, 0.0)
        np.testing.assert_allclose(mapping(3.0), [6.0])

    def test_lipschitz_constant_is_spectral_norm(self):
        mapping = AffineMap(matrix=np.diag([0.5, 0.25]), offset=np.zeros(2))
        assert mapping.lipschitz_constant() == pytest.approx(0.5)

    def test_fixed_point_of_contraction(self):
        mapping = AffineMap.scalar(0.5, 1.0)
        fixed_point = mapping.fixed_point()
        np.testing.assert_allclose(mapping(fixed_point), fixed_point)
        np.testing.assert_allclose(fixed_point, [2.0])

    def test_fixed_point_fails_for_identity(self):
        mapping = AffineMap.scalar(1.0, 1.0)
        with pytest.raises(np.linalg.LinAlgError):
            mapping.fixed_point()

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            AffineMap(matrix=np.eye(2), offset=np.zeros(3))

    @given(
        st.floats(-0.9, 0.9),
        st.floats(-5, 5),
        st.floats(-10, 10),
        st.floats(-10, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_contraction_shrinks_distances(self, slope, intercept, x, y):
        mapping = AffineMap.scalar(slope, intercept)
        image_gap = abs(mapping(np.array([x]))[0] - mapping(np.array([y]))[0])
        assert image_gap <= abs(slope) * abs(x - y) + 1e-9


class TestFunctionMap:
    def test_wraps_callable(self):
        mapping = FunctionMap(lambda x: x**2, name="square")
        np.testing.assert_allclose(mapping(np.array([3.0])), [9.0])

    def test_declared_lipschitz_constant_is_returned(self):
        mapping = FunctionMap(lambda x: 0.5 * x, lipschitz=0.5)
        assert mapping.lipschitz_constant() == 0.5

    def test_unknown_lipschitz_is_none(self):
        mapping = FunctionMap(np.sin)
        assert mapping.lipschitz_constant() is None

    def test_output_is_at_least_1d(self):
        mapping = FunctionMap(lambda x: float(x[0]) + 1.0)
        result = mapping(np.array([1.0]))
        assert result.ndim == 1
