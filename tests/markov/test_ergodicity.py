"""Tests for repro.markov.ergodicity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.ergodicity import (
    average_contraction_factor,
    check_ergodicity,
    is_aperiodic,
    is_primitive,
    is_strongly_connected,
)
from repro.markov.maps import AffineMap
from repro.markov.system import MarkovEdge, MarkovSystem


def contractive_single_vertex_system() -> MarkovSystem:
    return MarkovSystem(
        num_vertices=1,
        edges=[
            MarkovEdge(0, 0, AffineMap.scalar(0.5, 0.0), 0.5),
            MarkovEdge(0, 0, AffineMap.scalar(0.5, 0.5), 0.5),
        ],
    )


def periodic_two_vertex_system() -> MarkovSystem:
    return MarkovSystem(
        num_vertices=2,
        edges=[
            MarkovEdge(0, 1, AffineMap.scalar(0.5, 1.0), 1.0),
            MarkovEdge(1, 0, AffineMap.scalar(0.5, -1.0), 1.0),
        ],
        vertex_of_state=lambda state: 0 if state[0] <= 0 else 1,
    )


class TestGraphConditions:
    def test_single_vertex_with_self_loop_is_primitive(self):
        adjacency = np.array([[1.0]])
        assert is_strongly_connected(adjacency)
        assert is_aperiodic(adjacency)
        assert is_primitive(adjacency)

    def test_two_cycle_is_strongly_connected_but_periodic(self):
        adjacency = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert is_strongly_connected(adjacency)
        assert not is_aperiodic(adjacency)
        assert not is_primitive(adjacency)

    def test_disconnected_graph_is_not_strongly_connected(self):
        adjacency = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert not is_strongly_connected(adjacency)
        assert not is_primitive(adjacency)

    def test_two_cycle_with_self_loop_is_primitive(self):
        adjacency = np.array([[1.0, 1.0], [1.0, 0.0]])
        assert is_primitive(adjacency)

    def test_one_way_chain_is_not_strongly_connected(self):
        adjacency = np.array([[0.0, 1.0], [0.0, 1.0]])
        assert not is_strongly_connected(adjacency)

    def test_negative_adjacency_is_rejected(self):
        with pytest.raises(ValueError):
            is_primitive(np.array([[-1.0, 1.0], [1.0, 0.0]]))

    def test_non_square_adjacency_is_rejected(self):
        with pytest.raises(ValueError):
            is_strongly_connected(np.ones((2, 3)))


class TestAverageContractionFactor:
    def test_contractive_system_factor_is_half(self):
        factor = average_contraction_factor(contractive_single_vertex_system(), rng=1)
        assert factor == pytest.approx(0.5, abs=1e-9)

    def test_expanding_system_factor_exceeds_one(self):
        system = MarkovSystem(
            num_vertices=1,
            edges=[MarkovEdge(0, 0, AffineMap.scalar(1.5, 0.0), 1.0)],
        )
        assert average_contraction_factor(system, rng=1) > 1.0

    def test_rejects_non_positive_pair_count(self):
        with pytest.raises(ValueError):
            average_contraction_factor(contractive_single_vertex_system(), num_pairs=0)


class TestCheckErgodicity:
    def test_contractive_single_vertex_report(self):
        report = check_ergodicity(contractive_single_vertex_system(), rng=0)
        assert report.strongly_connected
        assert report.primitive
        assert report.uniquely_ergodic
        assert report.invariant_measure_exists
        assert report.contraction_factor == pytest.approx(0.5, abs=1e-9)

    def test_periodic_system_is_not_uniquely_ergodic(self):
        report = check_ergodicity(periodic_two_vertex_system(), estimate_contraction=False)
        assert report.strongly_connected
        assert not report.primitive
        assert not report.uniquely_ergodic
        assert report.invariant_measure_exists
        assert report.contraction_factor is None

    def test_summary_mentions_the_conclusion(self):
        report = check_ergodicity(contractive_single_vertex_system(), rng=0)
        assert "uniquely ergodic" in report.summary()
        periodic = check_ergodicity(periodic_two_vertex_system(), estimate_contraction=False)
        assert "invariant measure exists" in periodic.summary()
