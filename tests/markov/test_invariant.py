"""Tests for repro.markov.invariant."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.ifs import IteratedFunctionSystem
from repro.markov.invariant import (
    EmpiricalMeasure,
    estimate_invariant_measure,
    total_variation_distance,
    unique_ergodicity_diagnostic,
    wasserstein_distance_1d,
)
from repro.markov.maps import AffineMap


class TestEmpiricalMeasure:
    def test_promotes_1d_samples(self):
        measure = EmpiricalMeasure(samples=np.array([1.0, 2.0, 3.0]))
        assert measure.samples.shape == (3, 1)
        assert measure.size == 3
        assert measure.dimension == 1

    def test_mean_and_expectation(self):
        measure = EmpiricalMeasure(samples=np.array([[0.0], [2.0]]))
        np.testing.assert_allclose(measure.mean(), [1.0])
        assert measure.expectation(lambda x: float(x[0]) ** 2) == pytest.approx(2.0)

    def test_quantile(self):
        measure = EmpiricalMeasure(samples=np.linspace(0, 1, 101))
        assert measure.quantile(0.5) == pytest.approx(0.5, abs=0.02)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalMeasure(samples=np.empty((0, 1)))


class TestEstimateInvariantMeasure:
    def test_burn_in_discards_prefix(self):
        orbit = np.concatenate([np.full(50, 100.0), np.zeros(50)])
        measure = estimate_invariant_measure(orbit, burn_in=0.5)
        assert float(measure.mean()[0]) == pytest.approx(0.0)

    def test_rejects_bad_burn_in(self):
        with pytest.raises(ValueError):
            estimate_invariant_measure(np.zeros(10), burn_in=1.0)

    def test_rejects_too_short_orbit(self):
        with pytest.raises(ValueError):
            estimate_invariant_measure(np.zeros(1))


class TestDistances:
    def test_wasserstein_of_identical_samples_is_zero(self):
        samples = np.random.default_rng(0).random(100)
        assert wasserstein_distance_1d(samples, samples) == pytest.approx(0.0, abs=1e-12)

    def test_wasserstein_of_shifted_samples_equals_shift(self):
        samples = np.random.default_rng(0).random(500)
        assert wasserstein_distance_1d(samples, samples + 2.0) == pytest.approx(2.0, abs=0.01)

    def test_wasserstein_is_symmetric(self):
        a = np.random.default_rng(1).normal(size=200)
        b = np.random.default_rng(2).normal(loc=1.0, size=300)
        assert wasserstein_distance_1d(a, b) == pytest.approx(
            wasserstein_distance_1d(b, a), abs=1e-9
        )

    def test_wasserstein_rejects_empty(self):
        with pytest.raises(ValueError):
            wasserstein_distance_1d([], [1.0])

    def test_total_variation_of_identical_samples_is_zero(self):
        samples = np.random.default_rng(0).random(100)
        assert total_variation_distance(samples, samples) == pytest.approx(0.0)

    def test_total_variation_of_disjoint_samples_is_one(self):
        assert total_variation_distance(np.zeros(50), np.ones(50) * 10, bins=5) == pytest.approx(
            1.0
        )

    def test_total_variation_handles_constant_samples(self):
        assert total_variation_distance(np.zeros(10), np.zeros(10)) == pytest.approx(0.0)

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_total_variation_is_bounded_by_one(self, bins):
        rng = np.random.default_rng(bins)
        a = rng.normal(size=100)
        b = rng.normal(loc=3.0, size=100)
        distance = total_variation_distance(a, b, bins=bins)
        assert 0.0 <= distance <= 1.0


class TestUniqueErgodicityDiagnostic:
    def test_contractive_ifs_passes(self):
        ifs = IteratedFunctionSystem(
            maps=[AffineMap.scalar(0.5, 0.0), AffineMap.scalar(0.5, 0.5)],
            probabilities=[0.5, 0.5],
        )
        diagnostic = unique_ergodicity_diagnostic(
            simulate_orbit=lambda x0, length, generator: ifs.orbit(x0, length, generator),
            initial_states=[np.array([-10.0]), np.array([10.0])],
            orbit_length=1500,
            tolerance=0.05,
            rng=3,
        )
        assert diagnostic.consistent_with_unique_ergodicity
        assert diagnostic.max_distance < 0.05

    def test_frozen_dynamics_fails(self):
        # x(k+1) = x(k): the orbit never forgets its initial condition.
        def frozen_orbit(x0, length, generator):
            return np.full((length + 1, 1), float(x0[0]))

        diagnostic = unique_ergodicity_diagnostic(
            simulate_orbit=frozen_orbit,
            initial_states=[np.array([0.0]), np.array([5.0])],
            orbit_length=200,
            tolerance=0.1,
            rng=0,
        )
        assert not diagnostic.consistent_with_unique_ergodicity
        assert diagnostic.max_distance == pytest.approx(5.0, abs=0.01)

    def test_requires_at_least_two_initial_states(self):
        with pytest.raises(ValueError):
            unique_ergodicity_diagnostic(
                simulate_orbit=lambda x0, length, generator: np.zeros((length + 1, 1)),
                initial_states=[np.array([0.0])],
            )

    def test_pairwise_distance_count(self):
        def noisy_orbit(x0, length, generator):
            return generator.normal(size=(length + 1, 1))

        diagnostic = unique_ergodicity_diagnostic(
            simulate_orbit=noisy_orbit,
            initial_states=[np.array([0.0]), np.array([1.0]), np.array([2.0])],
            orbit_length=300,
            rng=1,
        )
        assert len(diagnostic.wasserstein_distances) == 3
