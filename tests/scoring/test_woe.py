"""Tests for repro.scoring.woe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scoring.woe import WoeBinning, information_value


def informative_data(n: int = 2000, seed: int = 0):
    """Higher factor values are more likely to be good (label 1)."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.0, 1.0, size=n)
    labels = (rng.random(n) < values).astype(int)
    return values, labels


class TestWoeBinning:
    def test_fit_produces_requested_number_of_bins(self):
        values, labels = informative_data()
        binning = WoeBinning(num_bins=5).fit(values, labels)
        assert len(binning.bins) == 5

    def test_woe_increases_with_an_informative_factor(self):
        values, labels = informative_data()
        binning = WoeBinning(num_bins=4).fit(values, labels)
        woes = [b.woe for b in binning.bins]
        assert woes[-1] > woes[0]

    def test_transform_maps_values_to_their_bin_woe(self):
        values, labels = informative_data()
        binning = WoeBinning(num_bins=3).fit(values, labels)
        transformed = binning.transform([0.01, 0.99])
        assert transformed[0] == pytest.approx(binning.bins[0].woe)
        assert transformed[1] == pytest.approx(binning.bins[-1].woe)

    def test_out_of_range_values_use_boundary_bins(self):
        values, labels = informative_data()
        binning = WoeBinning(num_bins=3).fit(values, labels)
        transformed = binning.transform([-10.0, 10.0])
        assert transformed[0] == pytest.approx(binning.bins[0].woe)
        assert transformed[1] == pytest.approx(binning.bins[-1].woe)

    def test_bin_counts_cover_all_observations(self):
        values, labels = informative_data(500)
        binning = WoeBinning(num_bins=5).fit(values, labels)
        assert sum(b.count for b in binning.bins) == 500

    def test_constant_factor_degenerates_to_single_bin(self):
        binning = WoeBinning(num_bins=4).fit(np.zeros(100), np.random.default_rng(0).integers(0, 2, 100))
        assert len(binning.bins) == 1

    def test_unfitted_binning_raises(self):
        with pytest.raises(RuntimeError):
            WoeBinning().bins

    def test_rejects_fewer_than_two_bins(self):
        with pytest.raises(ValueError):
            WoeBinning(num_bins=1)

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ValueError):
            WoeBinning().fit([1.0, 2.0], [0, 2])

    def test_rejects_misaligned_inputs(self):
        with pytest.raises(ValueError):
            WoeBinning().fit([1.0, 2.0], [0])


class TestInformationValue:
    def test_informative_factor_has_higher_iv_than_noise(self):
        values, labels = informative_data()
        informative_iv = information_value(WoeBinning(num_bins=5).fit(values, labels))
        rng = np.random.default_rng(1)
        noise_iv = information_value(
            WoeBinning(num_bins=5).fit(rng.random(2000), rng.integers(0, 2, 2000))
        )
        assert informative_iv > noise_iv
        assert informative_iv > 0.3

    def test_information_value_is_non_negative_for_noise(self):
        rng = np.random.default_rng(2)
        iv = information_value(
            WoeBinning(num_bins=4).fit(rng.random(500), rng.integers(0, 2, 500))
        )
        assert iv >= 0.0
