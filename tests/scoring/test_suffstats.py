"""Tests for repro.scoring.suffstats (the retraining count tables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scoring.features import income_code
from repro.scoring.logistic import LogisticRegression
from repro.scoring.suffstats import CompressedDesign, merge_tables


def example_rows(n: int = 500, seed: int = 0):
    """A loop-like training set: binary codes, small-ratio rates, labels."""
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 2, n).astype(float)
    offers = rng.integers(1, 11, n)
    rates = rng.binomial(offers, 0.2) / offers
    labels = rng.integers(0, 2, n).astype(float)
    return codes, rates, labels


class TestConstruction:
    def test_counts_sum_to_row_count(self):
        codes, rates, labels = example_rows()
        table = CompressedDesign.from_arrays(codes, rates, labels)
        assert table.num_rows == codes.size
        assert table.counts.dtype == np.int64

    def test_unique_rows_round_trip(self):
        """Unpacking the keys recovers exactly the distinct input rows."""
        codes, rates, labels = example_rows()
        table = CompressedDesign.from_arrays(codes, rates, labels)
        seen = {
            (float(c), float(r), float(y))
            for c, r, y in zip(codes, rates, labels)
        }
        unpacked = {
            (float(c), float(r), float(y))
            for c, r, y in zip(table.codes, table.rates, table.labels)
        }
        assert unpacked == seen
        assert table.num_unique == len(seen)

    def test_row_multiplicities_are_exact(self):
        table = CompressedDesign.from_arrays(
            [1.0, 1.0, 0.0, 1.0], [0.5, 0.5, 0.5, 0.25], [1, 1, 1, 1]
        )
        by_row = {
            (c, r): int(count)
            for c, r, count in zip(table.codes, table.rates, table.counts)
        }
        assert by_row == {(1.0, 0.5): 2, (0.0, 0.5): 1, (1.0, 0.25): 1}

    def test_offered_mask_drops_denied_rows(self):
        codes, rates, labels = example_rows()
        offered = np.zeros_like(codes)
        offered[: codes.size // 3] = 1
        table = CompressedDesign.from_arrays(codes, rates, labels, offered=offered)
        assert table.num_rows == codes.size // 3

    def test_boolean_codes_are_equivalent_to_floats(self):
        codes, rates, labels = example_rows()
        as_float = CompressedDesign.from_arrays(codes, rates, labels)
        as_bool = CompressedDesign.from_arrays(codes.astype(bool), rates, labels)
        np.testing.assert_array_equal(as_float.keys, as_bool.keys)
        np.testing.assert_array_equal(as_float.counts, as_bool.counts)

    def test_negative_zero_rate_is_normalised(self):
        table = CompressedDesign.from_arrays([0.0, 0.0], [-0.0, 0.0], [1, 1])
        assert table.num_unique == 1
        assert table.rates[0] == 0.0

    def test_design_matrix_matches_feature_builder_order(self):
        table = CompressedDesign.from_arrays([1.0], [0.25], [0])
        np.testing.assert_array_equal(table.design_matrix(), [[1.0, 0.25]])

    def test_misaligned_inputs_are_rejected(self):
        with pytest.raises(ValueError):
            CompressedDesign.from_arrays([1.0, 0.0], [0.5], [1, 0])
        with pytest.raises(ValueError):
            CompressedDesign.from_arrays([1.0], [0.5], [1], offered=[1, 1])

    def test_invalid_values_are_rejected(self):
        with pytest.raises(ValueError, match="binary"):
            CompressedDesign.from_arrays([0.5], [0.5], [1])
        with pytest.raises(ValueError, match="binary"):
            CompressedDesign.from_arrays([1.0], [0.5], [0.5])
        with pytest.raises(ValueError, match="binary"):
            CompressedDesign.from_arrays([-1.0], [0.5], [1])
        for bad_rate in (1.5, -0.25, np.nan, np.inf):
            with pytest.raises(ValueError, match="0, 1"):
                CompressedDesign.from_arrays([1.0], [bad_rate], [1])

    def test_empty_input_gives_an_empty_table(self):
        table = CompressedDesign.from_arrays([], [], [])
        assert table.num_unique == 0
        assert table.num_rows == 0


class TestSufficiency:
    def test_weighted_fit_matches_row_level_fit(self):
        """The count table is a sufficient statistic for the logistic fit."""
        codes, rates, labels = example_rows()
        table = CompressedDesign.from_arrays(codes, rates, labels)
        exact = LogisticRegression().fit(np.column_stack([codes, rates]), labels)
        compressed = LogisticRegression().fit(
            table.design_matrix(), table.labels, sample_weights=table.counts
        )
        np.testing.assert_allclose(
            compressed.coefficients, exact.coefficients, atol=1e-9
        )
        assert compressed.intercept == pytest.approx(exact.intercept, abs=1e-9)

    def test_weighted_log_likelihood_matches_row_level(self):
        codes, rates, labels = example_rows()
        table = CompressedDesign.from_arrays(codes, rates, labels)
        theta = np.array([0.3, -1.1, 2.0])
        z = np.clip(theta[0] + codes * theta[1] + rates * theta[2], -30.0, 30.0)
        row_level = float(
            np.sum(
                labels * -np.log1p(np.exp(-z))
                + (1.0 - labels) * -np.log1p(np.exp(z))
            )
        )
        assert table.weighted_log_likelihood(theta) == pytest.approx(
            row_level, rel=1e-12
        )

    def test_weighted_log_likelihood_validates_theta(self):
        table = CompressedDesign.from_arrays([1.0], [0.5], [1])
        with pytest.raises(ValueError):
            table.weighted_log_likelihood([0.0, 1.0])


class TestMerge:
    def test_merge_of_a_partition_equals_whole_population(self):
        codes, rates, labels = example_rows(600)
        whole = CompressedDesign.from_arrays(codes, rates, labels)
        pieces = [
            CompressedDesign.from_arrays(codes[lo:hi], rates[lo:hi], labels[lo:hi])
            for lo, hi in ((0, 150), (150, 400), (400, 600))
        ]
        merged = merge_tables(pieces)
        np.testing.assert_array_equal(merged.keys, whole.keys)
        np.testing.assert_array_equal(merged.counts, whole.counts)

    def test_pairwise_merge_matches_merge_tables(self):
        codes, rates, labels = example_rows(300)
        left = CompressedDesign.from_arrays(codes[:100], rates[:100], labels[:100])
        right = CompressedDesign.from_arrays(codes[100:], rates[100:], labels[100:])
        pairwise = left.merge(right)
        batched = merge_tables([left, right])
        np.testing.assert_array_equal(pairwise.keys, batched.keys)
        np.testing.assert_array_equal(pairwise.counts, batched.counts)

    def test_merge_single_table_copies(self):
        table = CompressedDesign.from_arrays([1.0], [0.5], [1])
        merged = merge_tables([table])
        np.testing.assert_array_equal(merged.keys, table.keys)
        assert merged.keys is not table.keys

    def test_merge_empty_collection_is_rejected(self):
        with pytest.raises(ValueError):
            merge_tables([])

    def test_merge_with_empty_table_is_identity(self):
        codes, rates, labels = example_rows(100)
        table = CompressedDesign.from_arrays(codes, rates, labels)
        empty = CompressedDesign.from_arrays([], [], [])
        merged = table.merge(empty)
        np.testing.assert_array_equal(merged.keys, table.keys)
        np.testing.assert_array_equal(merged.counts, table.counts)


class TestLoopIntegration:
    def test_income_code_column_round_trips(self):
        incomes = np.array([5.0, 15.0, 14.999, 120.0])
        rates = np.array([0.0, 0.5, 1.0, 0.25])
        table = CompressedDesign.from_arrays(
            income_code(incomes), rates, np.ones(4)
        )
        assert table.num_rows == 4
        assert set(np.unique(table.codes)) == {0.0, 1.0}
