"""Tests for repro.scoring.counterfactual."""

from __future__ import annotations

import pytest

from repro.scoring.counterfactual import explain_decision
from repro.scoring.scorecard import Scorecard, ScorecardFactor, paper_table1_scorecard


class TestExplainDecision:
    def test_approved_applicant_needs_no_explanation(self):
        card = paper_table1_scorecard()
        explanations = explain_decision(
            card, {"average_default_rate": 0.1, "income": 50.0}, cutoff=0.4
        )
        assert explanations == []

    def test_declined_applicant_gets_one_explanation_per_factor(self):
        card = paper_table1_scorecard()
        explanations = explain_decision(
            card, {"average_default_rate": 0.5, "income": 10.0}, cutoff=0.4
        )
        assert {explanation.factor for explanation in explanations} == {
            "average_default_rate",
            "income",
        }

    def test_counterfactual_score_crosses_the_cutoff(self):
        card = Scorecard(
            factors=[
                ScorecardFactor("average_default_rate", points=-8.17),
                ScorecardFactor("income_code", points=5.77),
            ]
        )
        features = {"average_default_rate": 0.5, "income_code": 0.0}
        explanations = explain_decision(card, features, cutoff=0.4)
        by_factor = {explanation.factor: explanation for explanation in explanations}
        adr = by_factor["average_default_rate"]
        adjusted = dict(features)
        adjusted["average_default_rate"] = adr.required_value
        assert card.score(adjusted) > 0.4

    def test_default_rate_counterfactual_requires_a_decrease(self):
        card = paper_table1_scorecard()
        explanations = explain_decision(
            card, {"average_default_rate": 0.8, "income": 50.0}, cutoff=0.4
        )
        by_factor = {explanation.factor: explanation for explanation in explanations}
        assert by_factor["average_default_rate"].change < 0

    def test_infeasible_changes_are_flagged(self):
        # Even a perfect default history cannot rescue this cut-off.
        card = Scorecard(factors=[ScorecardFactor("average_default_rate", points=-8.17)])
        explanations = explain_decision(
            card, {"average_default_rate": 0.9}, cutoff=1.0
        )
        assert len(explanations) == 1
        assert not explanations[0].achievable

    def test_explanations_are_sorted_by_effort(self):
        card = Scorecard(
            factors=[
                ScorecardFactor("small_lever", points=10.0),
                ScorecardFactor("big_lever", points=0.5),
            ]
        )
        explanations = explain_decision(
            card, {"small_lever": 0.0, "big_lever": 0.0}, cutoff=1.0,
            bounds={"small_lever": (0.0, 10.0), "big_lever": (0.0, 10.0)},
        )
        assert explanations[0].factor == "small_lever"
        assert abs(explanations[0].change) < abs(explanations[1].change)

    def test_zero_point_factors_are_skipped(self):
        card = Scorecard(
            factors=[
                ScorecardFactor("useless", points=0.0),
                ScorecardFactor("useful", points=2.0),
            ]
        )
        explanations = explain_decision(card, {"useless": 0.0, "useful": 0.0}, cutoff=1.0)
        assert [explanation.factor for explanation in explanations] == ["useful"]

    def test_describe_mentions_the_direction(self):
        card = paper_table1_scorecard()
        explanations = explain_decision(
            card, {"average_default_rate": 0.8, "income": 50.0}, cutoff=0.4
        )
        text = explanations[0].describe()
        assert "increase" in text or "decrease" in text
