"""Tests for repro.scoring.scorecard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scoring.logistic import LogisticRegression
from repro.scoring.scorecard import Scorecard, ScorecardFactor, paper_table1_scorecard


class TestPaperTable1:
    def test_worked_example_matches_the_paper(self):
        card = paper_table1_scorecard()
        score = card.score({"average_default_rate": 0.1, "income": 50.0})
        assert score == pytest.approx(4.953, abs=1e-9)

    def test_low_income_user_gets_no_income_points(self):
        card = paper_table1_scorecard()
        score = card.score({"average_default_rate": 0.0, "income": 10.0})
        assert score == pytest.approx(0.0)

    def test_default_history_lowers_the_score(self):
        card = paper_table1_scorecard()
        clean = card.score({"average_default_rate": 0.0, "income": 50.0})
        risky = card.score({"average_default_rate": 0.5, "income": 50.0})
        assert risky < clean

    def test_factor_points_match_the_paper(self):
        card = paper_table1_scorecard()
        points = {factor.name: factor.points for factor in card.factors}
        assert points["average_default_rate"] == pytest.approx(-8.17)
        assert points["income"] == pytest.approx(5.77)


class TestScorecard:
    def test_missing_feature_raises_key_error(self):
        card = paper_table1_scorecard()
        with pytest.raises(KeyError):
            card.score({"income": 20.0})

    def test_duplicate_factor_names_are_rejected(self):
        factor = ScorecardFactor(name="x", points=1.0)
        with pytest.raises(ValueError):
            Scorecard(factors=[factor, factor])

    def test_empty_factor_list_is_rejected(self):
        with pytest.raises(ValueError):
            Scorecard(factors=[])

    def test_base_score_is_added(self):
        card = Scorecard(factors=[ScorecardFactor("x", 2.0)], base_score=10.0)
        assert card.score({"x": 1.0}) == pytest.approx(12.0)

    def test_score_matrix_matches_scalar_scores(self):
        card = paper_table1_scorecard()
        features = np.array([[0.1, 50.0], [0.0, 10.0], [0.5, 80.0]])
        matrix_scores = card.score_matrix(features)
        scalar_scores = [
            card.score({"average_default_rate": row[0], "income": row[1]})
            for row in features
        ]
        np.testing.assert_allclose(matrix_scores, scalar_scores)

    def test_score_matrix_rejects_wrong_column_count(self):
        card = paper_table1_scorecard()
        with pytest.raises(ValueError):
            card.score_matrix(np.zeros((3, 3)))

    def test_table_rendering_mentions_every_factor(self):
        card = paper_table1_scorecard()
        text = card.table()
        assert "average_default_rate" in text
        assert "income" in text

    def test_factor_names_preserve_order(self):
        card = paper_table1_scorecard()
        assert card.factor_names == ("average_default_rate", "income")


class TestBatchTransforms:
    """score_matrix evaluates transforms columnwise, bit-identical to the loop."""

    @staticmethod
    def _loop_reference(card: Scorecard, features: np.ndarray) -> np.ndarray:
        """The pre-vectorisation per-row implementation, kept as the pin."""
        matrix = np.asarray(features, dtype=float)
        scores = np.full(matrix.shape[0], card.base_score, dtype=float)
        for column, factor in enumerate(card.factors):
            values = matrix[:, column]
            if factor.transform is not None:
                values = np.array([factor.transform(value) for value in values])
            scores += factor.points * values
        return scores

    def test_paper_card_is_bit_identical_to_the_loop(self):
        card = paper_table1_scorecard()
        rng = np.random.default_rng(0)
        features = np.column_stack(
            [rng.uniform(0, 1, 500), rng.uniform(0, 200, 500)]
        )
        np.testing.assert_array_equal(
            card.score_matrix(features), self._loop_reference(card, features)
        )

    def test_scalar_only_transform_keeps_the_loop(self):
        card = Scorecard(
            factors=[
                ScorecardFactor(
                    name="x",
                    points=2.0,
                    # Scalar contract, not declared batch-aware: stays on
                    # the per-row loop (and would raise on an array input).
                    transform=lambda value: 1.0 if value > 0.5 else 0.0,
                )
            ]
        )
        features = np.array([[0.2], [0.7], [0.5]])
        np.testing.assert_array_equal(
            card.score_matrix(features), self._loop_reference(card, features)
        )

    def test_misdeclared_shape_collapsing_transform_falls_back(self):
        card = Scorecard(
            factors=[
                ScorecardFactor(
                    name="x",
                    points=1.0,
                    # Declared batch-aware but collapses the column to a
                    # scalar — the guard must reject it and loop instead.
                    transform=lambda value: float(np.sum(value)),
                    vectorized_transform=True,
                )
            ]
        )
        features = np.array([[1.0], [2.0], [3.0]])
        np.testing.assert_array_equal(
            card.score_matrix(features), self._loop_reference(card, features)
        )

    def test_misdeclared_raising_transform_falls_back(self):
        card = Scorecard(
            factors=[
                ScorecardFactor(
                    name="x",
                    points=2.0,
                    transform=lambda value: 1.0 if value > 0.5 else 0.0,
                    vectorized_transform=True,  # lie: raises on arrays
                )
            ]
        )
        features = np.array([[0.2], [0.7], [0.5]])
        np.testing.assert_array_equal(
            card.score_matrix(features), self._loop_reference(card, features)
        )

    def test_undeclared_non_elementwise_transform_keeps_row_semantics(self):
        """A transform that accepts arrays but is not elementwise must not
        be batch-evaluated unless explicitly declared — the shape guard
        alone could not tell the difference."""
        card = Scorecard(
            factors=[
                ScorecardFactor(
                    name="x",
                    points=1.0,
                    # Per-scalar this is the zero function; per-column it
                    # would centre the values.
                    transform=lambda value: value - np.mean(value),
                )
            ]
        )
        features = np.array([[1.0], [2.0], [3.0]])
        np.testing.assert_array_equal(card.score_matrix(features), [0.0, 0.0, 0.0])

    def test_paper_card_scalar_scoring_still_works(self):
        card = paper_table1_scorecard()
        assert card.score({"average_default_rate": 0.1, "income": 50.0}) == (
            pytest.approx(4.953, abs=1e-9)
        )


class TestFromLogistic:
    def test_points_equal_fitted_coefficients(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(300, 2))
        labels = (features[:, 0] - features[:, 1] > 0).astype(int)
        model = LogisticRegression()
        model.fit(features, labels)
        card = Scorecard.from_logistic(model, ["a", "b"])
        points = {factor.name: factor.points for factor in card.factors}
        assert points["a"] == pytest.approx(model.coefficients[0])
        assert points["b"] == pytest.approx(model.coefficients[1])
        assert card.base_score == pytest.approx(model.intercept)

    def test_scorecard_reproduces_the_linear_predictor(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(200, 2))
        labels = (features.sum(axis=1) > 0).astype(int)
        model = LogisticRegression()
        model.fit(features, labels)
        card = Scorecard.from_logistic(model, ["a", "b"])
        np.testing.assert_allclose(
            card.score_matrix(features), model.decision_function(features), atol=1e-9
        )

    def test_intercept_can_be_excluded(self):
        model = LogisticRegression()
        model.fit(np.array([[0.0], [1.0], [0.0], [1.0]]), [0, 1, 0, 1])
        card = Scorecard.from_logistic(model, ["x"], include_intercept=False)
        assert card.base_score == 0.0

    def test_wrong_feature_name_count_is_rejected(self):
        model = LogisticRegression()
        model.fit(np.zeros((4, 2)), [0, 1, 0, 1])
        with pytest.raises(ValueError):
            Scorecard.from_logistic(model, ["only_one"])
