"""Tests for repro.scoring.cutoff."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scoring.cutoff import CutoffPolicy


class TestCutoffPolicy:
    def test_paper_default_cutoff_is_04(self):
        assert CutoffPolicy().cutoff == pytest.approx(0.4)

    def test_scores_above_cutoff_are_approved(self):
        policy = CutoffPolicy(cutoff=0.4)
        np.testing.assert_array_equal(policy.decide([0.5, 0.3, 4.953]), [1, 0, 1])

    def test_tie_is_denied_by_default(self):
        assert CutoffPolicy(cutoff=0.4).decide([0.4])[0] == 0

    def test_tie_can_be_approved(self):
        assert CutoffPolicy(cutoff=0.4, approve_on_tie=True).decide([0.4])[0] == 1

    def test_approval_rate(self):
        policy = CutoffPolicy(cutoff=0.0)
        assert policy.approval_rate([-1.0, 1.0, 2.0, 3.0]) == pytest.approx(0.75)

    def test_approval_rate_of_empty_scores_raises(self):
        with pytest.raises(ValueError):
            CutoffPolicy().approval_rate([])

    def test_paper_worked_example_is_approved(self):
        # Table I example: score 4.953 with cut-off 0.4 -> approval.
        assert CutoffPolicy(cutoff=0.4).decide([4.953])[0] == 1
