"""Tests for repro.scoring.calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scoring.calibration import ScoreScaler


class TestScoreScaler:
    def test_base_odds_map_to_base_score(self):
        scaler = ScoreScaler(base_score=600.0, base_odds=30.0, points_to_double_odds=20.0)
        assert scaler.points_from_log_odds(np.log(30.0)) == pytest.approx(600.0)

    def test_doubling_the_odds_adds_pdo_points(self):
        scaler = ScoreScaler(base_score=600.0, base_odds=30.0, points_to_double_odds=20.0)
        at_base = scaler.points_from_log_odds(np.log(30.0))
        at_double = scaler.points_from_log_odds(np.log(60.0))
        assert at_double - at_base == pytest.approx(20.0)

    def test_round_trip_is_identity(self):
        scaler = ScoreScaler()
        log_odds = np.linspace(-3, 3, 11)
        recovered = scaler.log_odds_from_points(scaler.points_from_log_odds(log_odds))
        np.testing.assert_allclose(recovered, log_odds, atol=1e-9)

    def test_probability_from_points_is_monotone(self):
        scaler = ScoreScaler()
        points = np.array([500.0, 600.0, 700.0])
        probabilities = scaler.probability_from_points(points)
        assert np.all(np.diff(probabilities) > 0)
        assert np.all((probabilities > 0) & (probabilities < 1))

    def test_rejects_non_positive_odds(self):
        with pytest.raises(ValueError):
            ScoreScaler(base_odds=0.0)

    def test_rejects_non_positive_pdo(self):
        with pytest.raises(ValueError):
            ScoreScaler(points_to_double_odds=0.0)

    def test_paper_cutoff_translates_to_points(self):
        scaler = ScoreScaler()
        cutoff_points = float(scaler.points_from_log_odds(0.4))
        assert scaler.log_odds_from_points(cutoff_points) == pytest.approx(0.4)
