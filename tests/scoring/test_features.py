"""Tests for repro.scoring.features."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scoring.features import FeatureBuilder, income_code


class TestIncomeCode:
    def test_threshold_at_15k(self):
        np.testing.assert_array_equal(
            income_code([10.0, 15.0, 20.0]), [0.0, 1.0, 1.0]
        )

    def test_custom_threshold(self):
        np.testing.assert_array_equal(income_code([40.0, 60.0], threshold=50.0), [0.0, 1.0])

    def test_result_is_float_zero_one(self):
        codes = income_code([1.0, 100.0])
        assert codes.dtype == float
        assert set(codes.tolist()) <= {0.0, 1.0}


class TestFeatureBuilder:
    def test_design_matrix_layout(self):
        builder = FeatureBuilder()
        matrix = builder.design_matrix([10.0, 50.0], [0.2, 0.0])
        np.testing.assert_allclose(matrix, [[0.0, 0.2], [1.0, 0.0]])
        assert builder.feature_names == ("income_code", "average_default_rate")

    def test_misaligned_inputs_are_rejected(self):
        with pytest.raises(ValueError):
            FeatureBuilder().design_matrix([10.0], [0.1, 0.2])

    def test_out_of_range_default_rates_are_rejected(self):
        with pytest.raises(ValueError):
            FeatureBuilder().design_matrix([10.0], [1.5])

    def test_rates_are_clipped_to_unit_interval(self):
        matrix = FeatureBuilder().design_matrix([10.0], [1.0 + 1e-12])
        assert matrix[0, 1] == pytest.approx(1.0)

    def test_custom_income_threshold(self):
        builder = FeatureBuilder(income_threshold=30.0)
        matrix = builder.design_matrix([20.0, 40.0], [0.0, 0.0])
        np.testing.assert_allclose(matrix[:, 0], [0.0, 1.0])
