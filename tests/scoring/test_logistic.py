"""Tests for repro.scoring.logistic (from-scratch logistic regression)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scoring.logistic import LogisticRegression


def make_separable_data(n: int = 400, seed: int = 0):
    """Two Gaussian clouds: label 1 when the feature mean is positive."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(loc=-1.0, scale=1.0, size=(n // 2, 2))
    x1 = rng.normal(loc=+1.0, scale=1.0, size=(n // 2, 2))
    features = np.vstack([x0, x1])
    labels = np.concatenate([np.zeros(n // 2), np.ones(n // 2)])
    return features, labels


class TestFitting:
    def test_learns_the_sign_of_an_informative_feature(self):
        features, labels = make_separable_data()
        model = LogisticRegression()
        fit = model.fit(features, labels)
        assert fit.converged
        assert np.all(fit.coefficients > 0)

    def test_predicts_well_on_training_data(self):
        features, labels = make_separable_data()
        model = LogisticRegression()
        model.fit(features, labels)
        accuracy = float(np.mean(model.predict(features) == labels))
        assert accuracy > 0.85

    def test_probabilities_are_in_unit_interval(self):
        features, labels = make_separable_data()
        model = LogisticRegression()
        model.fit(features, labels)
        probabilities = model.predict_probability(features)
        assert probabilities.min() >= 0.0
        assert probabilities.max() <= 1.0

    def test_1d_feature_input_is_accepted(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=200)
        y = (x > 0).astype(int)
        model = LogisticRegression()
        model.fit(x, y)
        assert model.coefficients.shape == (1,)
        assert model.coefficients[0] > 0

    def test_intercept_tracks_class_imbalance(self):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(500, 1)) * 0.01  # uninformative
        labels = (rng.random(500) < 0.9).astype(int)
        model = LogisticRegression()
        model.fit(features, labels)
        implied = 1.0 / (1.0 + np.exp(-model.intercept))
        assert implied == pytest.approx(0.9, abs=0.05)

    def test_sample_weights_shift_the_fit(self):
        features = np.array([[0.0], [0.0]])
        labels = np.array([0, 1])
        heavy_on_one = LogisticRegression()
        heavy_on_one.fit(features, labels, sample_weights=[1.0, 10.0])
        balanced = LogisticRegression()
        balanced.fit(features, labels, sample_weights=[1.0, 1.0])
        assert heavy_on_one.intercept > balanced.intercept

    def test_recovers_known_coefficients_approximately(self):
        rng = np.random.default_rng(3)
        features = rng.normal(size=(5000, 2))
        logits = 1.5 * features[:, 0] - 2.0 * features[:, 1] + 0.25
        labels = (rng.random(5000) < 1.0 / (1.0 + np.exp(-logits))).astype(int)
        model = LogisticRegression(l2_penalty=1e-6)
        fit = model.fit(features, labels)
        assert fit.coefficients[0] == pytest.approx(1.5, abs=0.2)
        assert fit.coefficients[1] == pytest.approx(-2.0, abs=0.2)
        assert fit.intercept == pytest.approx(0.25, abs=0.2)


class TestWarmStart:
    def test_warm_start_from_the_optimum_converges_immediately(self):
        features, labels = make_separable_data()
        cold = LogisticRegression().fit(features, labels)
        warm = LogisticRegression().fit(
            features,
            labels,
            initial_parameters=np.concatenate([[cold.intercept], cold.coefficients]),
        )
        assert warm.converged
        # The best case of a warm start must not stall into a cold refit:
        # one Newton step below tolerance is accepted immediately.
        assert warm.iterations == 1
        np.testing.assert_allclose(warm.coefficients, cold.coefficients, atol=1e-6)

    def test_junk_warm_start_falls_back_to_the_cold_optimum(self):
        """Regression: a warm start deep in the saturated region used to
        make the undamped Newton step diverge (flat clipped likelihood
        accepts any step); the safeguard must land on the cold optimum."""
        rng = np.random.default_rng(0)
        features = rng.normal(size=(200, 2))
        labels = (features[:, 0] - features[:, 1] > 0).astype(int)
        cold = LogisticRegression().fit(features, labels)
        for junk in ([30.0, 30.0, 30.0], [-25.0, 10.0, -40.0], [1e6, 0.0, 0.0]):
            warm = LogisticRegression().fit(
                features, labels, initial_parameters=junk
            )
            assert warm.converged
            np.testing.assert_allclose(
                warm.coefficients, cold.coefficients, atol=1e-6
            )
            assert warm.intercept == pytest.approx(cold.intercept, abs=1e-6)

    def test_warm_start_does_not_change_the_cold_path(self):
        """fit() without initial_parameters is byte-identical to the
        pre-warm-start solver: same iteration count, same bits."""
        features, labels = make_separable_data()
        first = LogisticRegression().fit(features, labels)
        second = LogisticRegression().fit(features, labels)
        assert first.iterations == second.iterations
        np.testing.assert_array_equal(first.coefficients, second.coefficients)

    def test_invalid_initial_parameters_are_rejected(self):
        features, labels = make_separable_data(50)
        with pytest.raises(ValueError):
            LogisticRegression().fit(features, labels, initial_parameters=[0.0])
        with pytest.raises(ValueError):
            LogisticRegression().fit(
                features, labels, initial_parameters=[0.0, np.nan, 0.0]
            )


class TestDegenerateCases:
    def test_all_positive_labels_yield_intercept_only_model(self):
        features = np.random.default_rng(0).normal(size=(50, 2))
        model = LogisticRegression()
        fit = model.fit(features, np.ones(50))
        assert np.all(fit.coefficients == 0.0)
        assert fit.intercept > 0
        assert np.all(model.predict_probability(features) > 0.99)

    def test_all_negative_labels_yield_negative_intercept(self):
        features = np.random.default_rng(0).normal(size=(50, 2))
        model = LogisticRegression()
        fit = model.fit(features, np.zeros(50))
        assert fit.intercept < 0

    def test_perfectly_separable_data_stays_finite(self):
        features = np.concatenate([-np.ones(30), np.ones(30)])[:, None]
        labels = np.concatenate([np.zeros(30), np.ones(30)])
        model = LogisticRegression(l2_penalty=1e-3)
        fit = model.fit(features, labels)
        assert np.all(np.isfinite(fit.coefficients))
        assert np.isfinite(fit.intercept)

    def test_collinear_columns_stay_finite(self):
        rng = np.random.default_rng(4)
        column = rng.normal(size=200)
        features = np.column_stack([column, column])
        labels = (column > 0).astype(int)
        model = LogisticRegression()
        fit = model.fit(features, labels)
        assert np.all(np.isfinite(fit.coefficients))


class TestValidation:
    def test_rejects_empty_data(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.empty((0, 2)), [])

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 1)), [0, 1, 2])

    def test_rejects_misaligned_labels(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 1)), [0, 1])

    def test_rejects_negative_sample_weights(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((2, 1)), [0, 1], sample_weights=[-1.0, 1.0])

    def test_rejects_negative_penalty(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2_penalty=-0.1)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_probability(np.zeros((2, 1)))

    def test_wrong_feature_count_at_prediction_raises(self):
        model = LogisticRegression()
        model.fit(np.zeros((10, 2)), [0, 1] * 5)
        with pytest.raises(ValueError):
            model.decision_function(np.zeros((5, 3)))

    @given(st.integers(min_value=5, max_value=60))
    @settings(max_examples=20, deadline=None)
    def test_fit_always_returns_finite_parameters(self, n):
        rng = np.random.default_rng(n)
        features = rng.normal(size=(n, 2))
        labels = rng.integers(0, 2, size=n)
        model = LogisticRegression()
        fit = model.fit(features, labels)
        assert np.all(np.isfinite(fit.coefficients))
        assert np.isfinite(fit.intercept)


class TestSharedLinearPredictorIterates:
    """The shared-linear-predictor IRLS produces byte-identical iterates.

    The reference below is the retired implementation, verbatim: it
    recomputed ``design @ theta`` (and its clip) inside ``_log_likelihood``
    on every damped iteration and once more for the final fit.  The
    refactored solver shares the per-iterate predictor instead; every
    Newton update and the final parameters must match byte for byte.
    """

    @staticmethod
    def _reference_fit(features, labels, sample_weights=None, initial_parameters=None):
        _CLIP = 30.0

        def sigmoid(z):
            return 1.0 / (1.0 + np.exp(-np.clip(z, -_CLIP, _CLIP)))

        def log_likelihood(design, y, weights, theta, penalty):
            z = np.clip(design @ theta, -_CLIP, _CLIP)
            log_p = -np.log1p(np.exp(-z))
            log_one_minus_p = -np.log1p(np.exp(z))
            likelihood = float(
                np.sum(weights * (y * log_p + (1.0 - y) * log_one_minus_p))
            )
            return likelihood - 0.5 * float(np.sum(penalty * theta**2))

        x = np.asarray(features, dtype=float)
        y = np.asarray(labels, dtype=float).ravel()
        weights = (
            np.ones_like(y)
            if sample_weights is None
            else np.asarray(sample_weights, dtype=float).ravel()
        )
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        theta = (
            np.zeros(design.shape[1])
            if initial_parameters is None
            else np.asarray(initial_parameters, dtype=float).ravel().copy()
        )
        penalty = np.full(design.shape[1], 1e-3)
        penalty[0] = 0.0
        damped = initial_parameters is not None
        gradient_scale = (
            1e-6 * max(1.0, float(weights.sum())) if damped else float("inf")
        )
        tolerance = 1e-8
        converged = False
        stalled = False
        iterations = 0
        updates = []
        raw_updates = []
        for iterations in range(1, 201):
            z = design @ theta
            p = sigmoid(z)
            gradient = design.T @ (weights * (y - p)) - penalty * theta
            w = np.maximum(weights * p * (1.0 - p), 1e-10)
            hessian = (design * w[:, None]).T @ design + np.diag(
                np.maximum(penalty, 1e-12)
            )
            update = np.linalg.solve(hessian, gradient)
            raw_updates.append(update.copy())
            if damped:
                if float(np.max(np.abs(update))) < tolerance:
                    if float(np.max(np.abs(gradient))) > gradient_scale:
                        stalled = True
                        break
                    theta = theta + update
                    updates.append(update.copy())
                    converged = True
                    break
                current = log_likelihood(design, y, weights, theta, penalty)
                chosen = None
                step = update
                for _ in range(30):
                    if log_likelihood(design, y, weights, theta + step, penalty) > current:
                        chosen = step
                        break
                    step = 0.5 * step
                if chosen is None:
                    stalled = True
                    break
                update = chosen
            theta = theta + update
            updates.append(update.copy())
            if float(np.max(np.abs(update))) < tolerance:
                if damped and float(np.max(np.abs(gradient))) > gradient_scale:
                    stalled = True
                    break
                converged = True
                break
        if damped and (stalled or not converged):
            return TestSharedLinearPredictorIterates._reference_fit(
                features, labels, sample_weights=sample_weights
            )
        return {
            "theta": theta,
            "iterations": iterations,
            "converged": converged,
            "log_likelihood": log_likelihood(design, y, weights, theta, penalty),
            "updates": updates,
            "raw_updates": raw_updates,
        }

    def _assert_byte_identical(self, features, labels, weights=None, initial=None):
        import repro.scoring.logistic as logistic_module

        reference = self._reference_fit(
            features, labels, sample_weights=weights, initial_parameters=initial
        )
        recorded = []
        true_solve = np.linalg.solve

        def recording_solve(a, b):
            result = true_solve(a, b)
            recorded.append(np.array(result, copy=True))
            return result

        model = LogisticRegression(l2_penalty=1e-3)
        # Route every Newton step through the public wrapper so the solve
        # outputs can be recorded (the raw-gufunc fast path is pinned
        # against the wrapper separately below).
        raw_solve1 = logistic_module._raw_solve1
        logistic_module._raw_solve1 = None
        np.linalg.solve = recording_solve
        try:
            fit = model.fit(
                features, labels, sample_weights=weights, initial_parameters=initial
            )
        finally:
            np.linalg.solve = true_solve
            logistic_module._raw_solve1 = raw_solve1
        assert fit.iterations == reference["iterations"]
        assert fit.converged == reference["converged"]
        assert fit.intercept == reference["theta"][0]
        np.testing.assert_array_equal(fit.coefficients, reference["theta"][1:])
        assert fit.log_likelihood == reference["log_likelihood"]
        # Every raw Newton step the solver computed, byte for byte — this
        # pins the whole iterate sequence, not just the final parameters.
        assert len(recorded) == len(reference["raw_updates"])
        for new_update, old_update in zip(recorded, reference["raw_updates"]):
            np.testing.assert_array_equal(new_update, old_update)

    def test_cold_start_iterates_byte_identical(self):
        features, labels = make_separable_data(n=120, seed=3)
        self._assert_byte_identical(features, labels)

    def test_weighted_fit_iterates_byte_identical(self):
        rng = np.random.default_rng(8)
        features = np.column_stack(
            [rng.integers(0, 2, 31).astype(float), rng.random(31)]
        )
        labels = rng.integers(0, 2, 31).astype(float)
        weights = rng.integers(1, 4000, 31).astype(float)
        self._assert_byte_identical(features, labels, weights=weights)

    def test_warm_start_iterates_byte_identical(self):
        features, labels = make_separable_data(n=90, seed=5)
        cold = LogisticRegression(l2_penalty=1e-3).fit(features, labels)
        initial = np.concatenate([[cold.intercept], cold.coefficients]) + 0.05
        self._assert_byte_identical(features, labels, initial=initial)

    def test_raw_solve_fast_path_matches_public_wrapper(self):
        # The tiny-system fast path calls the gufunc behind
        # np.linalg.solve directly; the whole fit must come out identical.
        import repro.scoring.logistic as logistic_module

        if logistic_module._raw_solve1 is None:
            pytest.skip("raw linalg gufunc unavailable in this numpy build")
        features, labels = make_separable_data(n=150, seed=11)
        fast = LogisticRegression(l2_penalty=1e-3).fit(features, labels)
        raw_solve1 = logistic_module._raw_solve1
        logistic_module._raw_solve1 = None
        try:
            slow = LogisticRegression(l2_penalty=1e-3).fit(features, labels)
        finally:
            logistic_module._raw_solve1 = raw_solve1
        assert fast.intercept == slow.intercept
        np.testing.assert_array_equal(fast.coefficients, slow.coefficients)
        assert fast.iterations == slow.iterations
        assert fast.log_likelihood == slow.log_likelihood

    def test_final_log_likelihood_matches_reference_formula(self):
        features, labels = make_separable_data(n=60, seed=9)
        model = LogisticRegression(l2_penalty=1e-3)
        fit = model.fit(features, labels)
        design = np.hstack([np.ones((features.shape[0], 1)), features])
        theta = np.concatenate([[fit.intercept], fit.coefficients])
        penalty = np.full(3, 1e-3)
        penalty[0] = 0.0
        expected = LogisticRegression._log_likelihood(
            design, np.asarray(labels, dtype=float), np.ones(len(labels)), theta, penalty
        )
        assert fit.log_likelihood == expected
