"""Tests for repro.data.scenarios (concept-drift income tables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.census import Race, default_income_table
from repro.data.income import IncomeSampler
from repro.data.scenarios import recession_scenario, shift_distribution, widening_gap_scenario


class TestShiftDistribution:
    def test_zero_downshift_is_identity(self, income_table):
        original = income_table.distribution(2010, Race.WHITE)
        shifted = shift_distribution(original, 0.0)
        np.testing.assert_allclose(shifted.as_array(), original.as_array())

    def test_shifted_shares_remain_a_probability_vector(self, income_table):
        shifted = shift_distribution(income_table.distribution(2010, Race.WHITE), 0.4)
        assert shifted.as_array().sum() == pytest.approx(1.0)
        assert shifted.as_array().min() >= 0.0

    def test_shift_lowers_the_upper_tail(self, income_table):
        original = income_table.distribution(2010, Race.ASIAN)
        shifted = shift_distribution(original, 0.3)
        assert shifted.share_above(100.0) < original.share_above(100.0)

    def test_rejects_invalid_downshift(self, income_table):
        with pytest.raises(ValueError):
            shift_distribution(income_table.distribution(2010, Race.WHITE), 1.5)


class TestRecessionScenario:
    def test_only_shock_years_are_affected(self, income_table):
        table = recession_scenario(shock_years=(2008, 2009), downshift=0.35, base=income_table)
        unaffected = table.bracket_shares(2005, Race.WHITE)
        np.testing.assert_allclose(unaffected, income_table.bracket_shares(2005, Race.WHITE))
        affected = table.bracket_shares(2008, Race.WHITE)
        assert not np.allclose(affected, income_table.bracket_shares(2008, Race.WHITE))

    def test_shock_lowers_expected_income_in_the_shock_year(self, income_table):
        table = recession_scenario(base=income_table)
        baseline_sampler = IncomeSampler(income_table)
        shocked_sampler = IncomeSampler(table)
        assert shocked_sampler.expected_income(2008, Race.WHITE) < baseline_sampler.expected_income(
            2008, Race.WHITE
        )

    def test_every_race_is_hit(self, income_table):
        table = recession_scenario(base=income_table)
        for race in Race:
            assert IncomeSampler(table).expected_income(2009, race) < IncomeSampler(
                income_table
            ).expected_income(2009, race)


class TestWideningGapScenario:
    def test_only_the_disadvantaged_group_is_affected(self, income_table):
        table = widening_gap_scenario(disadvantaged=Race.BLACK, base=income_table)
        np.testing.assert_allclose(
            table.bracket_shares(2015, Race.WHITE),
            income_table.bracket_shares(2015, Race.WHITE),
        )
        assert not np.allclose(
            table.bracket_shares(2015, Race.BLACK),
            income_table.bracket_shares(2015, Race.BLACK),
        )

    def test_years_before_the_start_are_untouched(self, income_table):
        table = widening_gap_scenario(start_year=2010, base=income_table)
        np.testing.assert_allclose(
            table.bracket_shares(2005, Race.BLACK),
            income_table.bracket_shares(2005, Race.BLACK),
        )

    def test_the_gap_keeps_widening_over_time(self, income_table):
        table = widening_gap_scenario(
            disadvantaged=Race.BLACK, annual_downshift=0.05, start_year=2010, base=income_table
        )
        sampler = IncomeSampler(table)
        baseline = IncomeSampler(income_table)
        gap_2012 = baseline.expected_income(2012, Race.BLACK) - sampler.expected_income(
            2012, Race.BLACK
        )
        gap_2020 = baseline.expected_income(2020, Race.BLACK) - sampler.expected_income(
            2020, Race.BLACK
        )
        assert gap_2020 > gap_2012 > 0
