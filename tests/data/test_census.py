"""Tests for repro.data.census (the synthetic CPS Table A-2 substitute)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.census import (
    BRACKET_LABELS,
    INCOME_BRACKETS,
    BracketDistribution,
    IncomeTable,
    Race,
    default_income_table,
    paper_race_mix,
)


class TestBrackets:
    def test_there_are_nine_brackets(self):
        assert len(INCOME_BRACKETS) == 9
        assert len(BRACKET_LABELS) == 9

    def test_brackets_are_contiguous(self):
        for (low, high), (next_low, _next_high) in zip(INCOME_BRACKETS, INCOME_BRACKETS[1:]):
            assert high == next_low

    def test_first_bracket_starts_at_zero_and_last_is_over_200(self):
        assert INCOME_BRACKETS[0][0] == 0.0
        assert INCOME_BRACKETS[-1][0] == 200.0


class TestDefaultIncomeTable:
    def test_covers_2002_to_2020(self, income_table):
        assert income_table.years[0] == 2002
        assert income_table.years[-1] == 2020

    def test_covers_three_races(self, income_table):
        assert set(income_table.races) == set(Race)

    def test_shares_are_probability_vectors(self, income_table):
        for year in income_table.years:
            for race in Race:
                shares = income_table.bracket_shares(year, race)
                assert shares.shape == (9,)
                assert shares.min() >= 0
                assert shares.sum() == pytest.approx(1.0)

    def test_race_mix_2002_matches_paper(self, income_table):
        mix = income_table.race_mix(2002)
        expected = paper_race_mix()
        by_race = dict(zip(income_table.races, mix))
        for race, probability in expected.items():
            assert by_race[race] == pytest.approx(probability, abs=0.01)

    def test_asian_upper_tail_is_heaviest_in_2020(self, income_table):
        shares = {
            race: income_table.distribution(2020, race).share_above(200.0) for race in Race
        }
        assert shares[Race.ASIAN] > shares[Race.WHITE] > shares[Race.BLACK]
        assert shares[Race.ASIAN] == pytest.approx(0.20, abs=0.06)

    def test_most_black_households_below_75k_in_2020(self, income_table):
        shares = income_table.bracket_shares(2020, Race.BLACK)
        assert shares[:5].sum() > 0.5

    def test_incomes_grow_over_time(self, income_table):
        for race in Race:
            early = income_table.distribution(2002, race)
            late = income_table.distribution(2020, race)
            assert late.share_above(100.0) > early.share_above(100.0)

    def test_years_outside_range_are_clamped(self, income_table):
        clamped = income_table.distribution(2030, Race.WHITE)
        explicit = income_table.distribution(2020, Race.WHITE)
        np.testing.assert_array_equal(clamped.as_array(), explicit.as_array())

    def test_household_counts_are_positive(self, income_table):
        for race in Race:
            assert income_table.households(2010, race) > 0

    def test_custom_year_range(self):
        table = default_income_table(2005, 2007)
        assert table.years == (2005, 2006, 2007)

    def test_rejects_inverted_year_range(self):
        with pytest.raises(ValueError):
            default_income_table(2010, 2005)

    def test_is_deterministic(self):
        first = default_income_table().bracket_shares(2010, Race.BLACK)
        second = default_income_table().bracket_shares(2010, Race.BLACK)
        np.testing.assert_array_equal(first, second)


class TestBracketDistribution:
    def test_median_bracket_is_consistent(self, income_table):
        distribution = income_table.distribution(2020, Race.WHITE)
        median_index = distribution.median_bracket()
        cumulative = np.cumsum(distribution.as_array())
        assert cumulative[median_index] >= 0.5
        if median_index > 0:
            assert cumulative[median_index - 1] < 0.5

    def test_share_above_zero_is_one(self, income_table):
        distribution = income_table.distribution(2010, Race.ASIAN)
        assert distribution.share_above(0.0) == pytest.approx(1.0)

    def test_share_above_is_monotone(self, income_table):
        distribution = income_table.distribution(2010, Race.WHITE)
        assert distribution.share_above(15.0) >= distribution.share_above(75.0)


class TestIncomeTableValidation:
    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            IncomeTable({})

    def test_rejects_missing_race_year_pair(self):
        base = default_income_table(2010, 2011)
        distributions = {
            (year, race): base.distribution(year, race)
            for year in (2010, 2011)
            for race in Race
        }
        del distributions[(2011, Race.ASIAN)]
        with pytest.raises(ValueError, match="missing"):
            IncomeTable(distributions)


class TestPaperRaceMix:
    def test_sums_to_one(self):
        assert sum(paper_race_mix().values()) == pytest.approx(1.0)

    def test_white_is_majority(self):
        mix = paper_race_mix()
        assert mix[Race.WHITE] > mix[Race.BLACK] > mix[Race.ASIAN]
