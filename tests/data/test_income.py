"""Tests for repro.data.income (income sampling)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.census import INCOME_BRACKETS, Race, default_income_table
from repro.data.income import IncomeSampler
from repro.data.synthetic import PopulationSpec, generate_population


@pytest.fixture(scope="module")
def sampler():
    return IncomeSampler(default_income_table())


class TestSample:
    def test_sampled_incomes_lie_within_bracket_range(self, sampler):
        incomes = sampler.sample(2010, Race.WHITE, 500, rng=1)
        assert incomes.min() >= INCOME_BRACKETS[0][0]
        assert incomes.max() <= INCOME_BRACKETS[-1][1]

    def test_sample_size_zero_is_empty(self, sampler):
        assert sampler.sample(2010, Race.BLACK, 0, rng=1).size == 0

    def test_negative_size_is_rejected(self, sampler):
        with pytest.raises(ValueError):
            sampler.sample(2010, Race.BLACK, -1)

    def test_sampling_is_reproducible_with_seed(self, sampler):
        a = sampler.sample(2015, Race.ASIAN, 100, rng=7)
        b = sampler.sample(2015, Race.ASIAN, 100, rng=7)
        np.testing.assert_array_equal(a, b)

    def test_asian_mean_income_exceeds_black_mean_income(self, sampler):
        asian = sampler.sample(2020, Race.ASIAN, 4000, rng=3)
        black = sampler.sample(2020, Race.BLACK, 4000, rng=3)
        assert asian.mean() > black.mean()

    def test_empirical_bracket_shares_match_table(self, sampler):
        incomes = sampler.sample(2010, Race.WHITE, 20000, rng=11)
        shares = sampler.table.bracket_shares(2010, Race.WHITE)
        first_bracket_share = float(np.mean(incomes < 15.0))
        assert first_bracket_share == pytest.approx(shares[0], abs=0.02)


class TestCachedBracketCdf:
    """The cached-CDF path replays the retired generator.choice draws exactly."""

    def _reference_sample(self, sampler, year, race, size, generator):
        # The pre-cache implementation, verbatim: per-call share lookup,
        # generator.choice with p, then in-bracket uniforms.
        shares = sampler.table.bracket_shares(year, race)
        brackets = generator.choice(len(INCOME_BRACKETS), size=size, p=shares)
        uniforms = generator.random(size)
        lows = np.array([low for low, _ in INCOME_BRACKETS], dtype=float)
        highs = np.array([high for _, high in INCOME_BRACKETS], dtype=float)
        return lows[brackets] + uniforms * (highs[brackets] - lows[brackets])

    def test_sample_bit_identical_to_retired_choice_call(self, sampler):
        for year, race, size in ((2002, Race.WHITE, 1000), (2015, Race.BLACK, 37), (2020, Race.ASIAN, 512)):
            new = sampler.sample(year, race, size, np.random.default_rng(314))
            old = self._reference_sample(
                sampler, year, race, size, np.random.default_rng(314)
            )
            np.testing.assert_array_equal(new, old)

    def test_generator_state_matches_after_sampling(self, sampler):
        # Downstream draws (the repayment phase shares the shard stream)
        # must see the identical generator state the choice-based sampler
        # left behind.
        g_new, g_old = np.random.default_rng(77), np.random.default_rng(77)
        sampler.sample(2010, Race.WHITE, 333, g_new)
        self._reference_sample(sampler, 2010, Race.WHITE, 333, g_old)
        np.testing.assert_array_equal(g_new.random(64), g_old.random(64))

    def test_cdf_is_cached_and_validated_once(self, sampler):
        first = sampler.bracket_cdf(2010, Race.WHITE)
        second = sampler.bracket_cdf(2010, Race.WHITE)
        assert first is second
        assert first[-1] == 1.0

    def test_incomes_from_uniforms_matches_sample(self, sampler):
        generator = np.random.default_rng(5)
        block = generator.random(2 * 200)
        from_uniforms = sampler.incomes_from_uniforms(
            2012, Race.BLACK, block[:200], block[200:]
        )
        direct = sampler.sample(2012, Race.BLACK, 200, np.random.default_rng(5))
        np.testing.assert_array_equal(from_uniforms, direct)


class TestSamplePopulation:
    def test_one_income_per_user(self, sampler, rng):
        population = generate_population(PopulationSpec(size=50), rng)
        incomes = sampler.sample_population(2010, population.races, rng)
        assert incomes.shape == (50,)
        assert np.all(incomes >= 0)

    def test_reproducible_with_seed(self, sampler):
        population = generate_population(PopulationSpec(size=30), 5)
        a = sampler.sample_population(2012, population.races, 9)
        b = sampler.sample_population(2012, population.races, 9)
        np.testing.assert_array_equal(a, b)


class TestExpectedIncome:
    def test_expected_income_orders_races_correctly(self, sampler):
        assert sampler.expected_income(2020, Race.ASIAN) > sampler.expected_income(
            2020, Race.BLACK
        )

    def test_expected_income_grows_over_years(self, sampler):
        assert sampler.expected_income(2020, Race.WHITE) > sampler.expected_income(
            2002, Race.WHITE
        )

    @given(st.sampled_from(list(Race)), st.integers(min_value=2002, max_value=2020))
    @settings(max_examples=20, deadline=None)
    def test_expected_income_is_within_bracket_bounds(self, race, year):
        sampler = IncomeSampler(default_income_table())
        expected = sampler.expected_income(year, race)
        assert INCOME_BRACKETS[0][0] <= expected <= INCOME_BRACKETS[-1][1]
