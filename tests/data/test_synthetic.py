"""Tests for repro.data.synthetic (population generation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.census import Race
from repro.data.synthetic import PopulationSpec, SyntheticPopulation, generate_population


class TestPopulationSpec:
    def test_defaults_match_paper(self):
        spec = PopulationSpec()
        assert spec.size == 1000
        assert sum(spec.race_mix.values()) == pytest.approx(1.0)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            PopulationSpec(size=0)

    def test_rejects_invalid_race_mix(self):
        with pytest.raises(ValueError):
            PopulationSpec(race_mix={Race.BLACK: 0.5, Race.WHITE: 0.1, Race.ASIAN: 0.1})


class TestGeneratePopulation:
    def test_population_has_requested_size(self, rng):
        population = generate_population(PopulationSpec(size=123), rng)
        assert population.size == 123

    def test_generation_is_reproducible(self):
        a = generate_population(PopulationSpec(size=200), 42)
        b = generate_population(PopulationSpec(size=200), 42)
        assert a.races == b.races

    def test_race_shares_approximate_the_mix(self):
        population = generate_population(PopulationSpec(size=20000), 1)
        sizes = population.group_sizes()
        assert sizes[Race.WHITE] / population.size == pytest.approx(0.8406, abs=0.02)
        assert sizes[Race.BLACK] / population.size == pytest.approx(0.1235, abs=0.02)
        assert sizes[Race.ASIAN] / population.size == pytest.approx(0.0359, abs=0.02)

    def test_single_race_mix(self):
        population = generate_population(
            PopulationSpec(size=10, race_mix={Race.BLACK: 1.0}), 0
        )
        assert all(race == Race.BLACK for race in population.races)


class TestSyntheticPopulation:
    def test_indices_by_race_partition_the_population(self, small_population):
        indices = small_population.indices_by_race()
        combined = np.sort(np.concatenate(list(indices.values())))
        np.testing.assert_array_equal(combined, np.arange(small_population.size))

    def test_group_sizes_sum_to_population_size(self, small_population):
        assert sum(small_population.group_sizes().values()) == small_population.size

    def test_races_array_matches_tuple(self, small_population):
        array = small_population.races_array()
        assert array.shape == (small_population.size,)
        assert array[0] == small_population.races[0]

    def test_empty_group_has_empty_index_array(self):
        population = SyntheticPopulation(races=(Race.WHITE, Race.WHITE))
        indices = population.indices_by_race()
        assert indices[Race.ASIAN].size == 0

    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_any_size_population_partitions_correctly(self, size):
        population = generate_population(PopulationSpec(size=size), 3)
        total = sum(indices.size for indices in population.indices_by_race().values())
        assert total == size
