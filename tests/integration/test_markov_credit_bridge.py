"""Integration tests: the abstract Markov/IFS machinery applied to credit users.

The paper's Section VI models each user as a signal-dependent IFS and ties
equal impact to the ergodicity of the induced Markov system.  These tests
build that abstract user model for a credit borrower, compare it with the
concrete Gaussian repayment model, and run the ergodicity checklist on the
induced two-state (offered / locked-out) Markov system.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.loop import ClosedLoop
from repro.core.ai_system import ConstantDecisionSystem
from repro.core.filters import CumulativeAverageFilter
from repro.core.population import IFSPopulation
from repro.credit.repayment import GaussianRepaymentModel
from repro.markov.ergodicity import check_ergodicity
from repro.markov.ifs import SignalDependentIFS
from repro.markov.maps import AffineMap, FunctionMap
from repro.markov.system import MarkovEdge, MarkovSystem
from repro.utils.stats import cesaro_averages


def credit_user_ifs(repay_probability: float) -> SignalDependentIFS:
    """The Section-VI-style user: repay w.p. p when offered, never otherwise."""
    return SignalDependentIFS(
        transition_maps=(AffineMap.scalar(1.0, 0.0),),
        transition_probabilities=lambda signal: [1.0],
        output_maps=(
            FunctionMap(lambda x: np.array([1.0]), name="repay"),
            FunctionMap(lambda x: np.array([0.0]), name="default"),
        ),
        output_probabilities=lambda signal: (
            [repay_probability, 1.0 - repay_probability] if signal >= 0.5 else [0.0, 1.0]
        ),
    )


class TestIFSUserMatchesTheRepaymentModel:
    def test_long_run_action_average_matches_the_probit_probability(self):
        model = GaussianRepaymentModel()
        affordability = 0.15
        probability = float(model.repayment_probability(affordability)[0])
        user = credit_user_ifs(probability)
        population = IFSPopulation(users=[user], initial_states=[np.array([0.0])])
        loop = ClosedLoop(
            ai_system=ConstantDecisionSystem(decision=1),
            population=population,
            loop_filter=CumulativeAverageFilter(num_users=1),
        )
        history = loop.run(3000, rng=0)
        long_run_average = history.running_action_averages()[-1, 0]
        assert long_run_average == pytest.approx(probability, abs=0.03)

    def test_equal_impact_holds_for_identical_ifs_users(self):
        probability = 0.7
        population = IFSPopulation(
            users=[credit_user_ifs(probability) for _ in range(5)],
            initial_states=[np.array([float(i)]) for i in range(5)],
        )
        loop = ClosedLoop(
            ai_system=ConstantDecisionSystem(decision=1),
            population=population,
            loop_filter=CumulativeAverageFilter(num_users=5),
        )
        history = loop.run(2500, rng=1)
        limits = history.running_action_averages()[-1]
        # All users converge to the same limit despite different initial states.
        assert limits.max() - limits.min() < 0.06
        assert limits.mean() == pytest.approx(probability, abs=0.05)


class TestCreditMarkovSystemErgodicity:
    def _credit_markov_system(self, relapse_probability: float) -> MarkovSystem:
        """Two partition cells: 0 = in good standing, 1 = locked out.

        A user in good standing defaults (and is locked out) with the given
        probability; a locked-out user regains standing with probability 0.5
        (e.g. after rehabilitation), keeping the graph strongly connected.
        """
        to_locked = FunctionMap(lambda x: np.array([1.0]), name="lock")
        to_good = FunctionMap(lambda x: np.array([0.0]), name="rehabilitate")
        stay_good = FunctionMap(lambda x: np.array([0.0]), name="stay good")
        stay_locked = FunctionMap(lambda x: np.array([1.0]), name="stay locked")
        return MarkovSystem(
            num_vertices=2,
            edges=[
                MarkovEdge(0, 0, stay_good, 1.0 - relapse_probability),
                MarkovEdge(0, 1, to_locked, relapse_probability),
                MarkovEdge(1, 0, to_good, 0.5),
                MarkovEdge(1, 1, stay_locked, 0.5),
            ],
            vertex_of_state=lambda state: int(round(float(state[0]))),
        )

    def test_rehabilitating_credit_system_is_uniquely_ergodic(self):
        system = self._credit_markov_system(relapse_probability=0.1)
        report = check_ergodicity(system, estimate_contraction=False)
        assert report.strongly_connected
        assert report.primitive
        assert report.uniquely_ergodic

    def test_permanent_lockout_breaks_strong_connectivity(self):
        """If a defaulted user can never regain standing, the invariant
        measure guarantee of Section VI no longer applies."""
        absorbing = MarkovSystem(
            num_vertices=2,
            edges=[
                MarkovEdge(0, 0, FunctionMap(lambda x: np.array([0.0])), 0.9),
                MarkovEdge(0, 1, FunctionMap(lambda x: np.array([1.0])), 0.1),
                MarkovEdge(1, 1, FunctionMap(lambda x: np.array([1.0])), 1.0),
            ],
            vertex_of_state=lambda state: int(round(float(state[0]))),
        )
        report = check_ergodicity(absorbing, estimate_contraction=False)
        assert not report.strongly_connected
        assert not report.uniquely_ergodic

    def test_time_average_of_the_ergodic_chain_converges_to_the_stationary_share(self):
        system = self._credit_markov_system(relapse_probability=0.2)
        orbit = system.orbit(np.array([0.0]), 4000, rng=5)
        # Stationary distribution of the 2-state chain: locked share = p/(p+0.5).
        expected_locked_share = 0.2 / 0.7
        running = cesaro_averages(orbit[:, 0])
        assert running[-1] == pytest.approx(expected_locked_share, abs=0.03)
