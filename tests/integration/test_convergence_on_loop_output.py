"""Integration tests: convergence and spectral diagnostics on real loop output."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.convergence import estimate_long_run_average, impact_gap_significance
from repro.data.census import Race
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_trial
from repro.markov.operators import transition_matrix
from repro.markov.spectral import mixing_time_upper_bound, spectral_diagnostics
from repro.markov.system import MarkovEdge, MarkovSystem
from repro.markov.maps import FunctionMap


@pytest.fixture(scope="module")
def trial():
    return run_trial(CaseStudyConfig(num_users=200, num_trials=1, seed=77), trial_index=0)


class TestConvergenceOnLoopOutput:
    def test_portfolio_default_rate_estimate_is_a_probability(self, trial):
        per_step_rate = 1.0 - trial.history.actions_matrix().mean(axis=1)
        estimate = estimate_long_run_average(per_step_rate, num_batches=4, burn_in=0.1)
        low, high = estimate.interval
        assert 0.0 <= low <= high <= 1.0

    def test_race_gap_significance_runs_on_repayment_actions(self, trial):
        groups = {race: np.flatnonzero(trial.races == race) for race in Race}
        significance = impact_gap_significance(
            trial.history.actions_matrix(), groups, num_batches=4
        )
        assert significance.gap >= 0.0
        assert len(significance.group_estimates) == 3

    def test_estimates_cover_the_observed_tail_average(self, trial):
        per_step_rate = trial.history.actions_matrix().mean(axis=1)
        estimate = estimate_long_run_average(per_step_rate, num_batches=4, burn_in=0.2)
        tail_average = float(per_step_rate[-5:].mean())
        low, high = estimate.interval
        assert low - 0.05 <= tail_average <= high + 0.05


class TestSpectralDiagnosticsOfTheCreditChain:
    def _chain(self, relapse: float, rehabilitation: float) -> np.ndarray:
        stay_good = FunctionMap(lambda x: np.array([0.0]))
        lock = FunctionMap(lambda x: np.array([1.0]))
        back = FunctionMap(lambda x: np.array([0.0]))
        stay_locked = FunctionMap(lambda x: np.array([1.0]))
        system = MarkovSystem(
            num_vertices=2,
            edges=[
                MarkovEdge(0, 0, stay_good, 1.0 - relapse),
                MarkovEdge(0, 1, lock, relapse),
                MarkovEdge(1, 0, back, rehabilitation),
                MarkovEdge(1, 1, stay_locked, 1.0 - rehabilitation),
            ],
            vertex_of_state=lambda state: int(round(float(state[0]))),
        )
        return transition_matrix([np.array([0.0]), np.array([1.0])], system)

    def test_faster_rehabilitation_means_faster_equalisation(self):
        slow = self._chain(relapse=0.1, rehabilitation=0.05)
        fast = self._chain(relapse=0.1, rehabilitation=0.6)
        assert (
            spectral_diagnostics(fast).spectral_gap
            > spectral_diagnostics(slow).spectral_gap
        )
        assert mixing_time_upper_bound(fast) < mixing_time_upper_bound(slow)

    def test_no_rehabilitation_drains_everyone_into_lock_out(self):
        absorbing = self._chain(relapse=0.1, rehabilitation=0.0)
        # With an absorbing lock-out state the only stationary distribution
        # puts all mass on "locked out": the loop's long-run impact is that
        # every user eventually loses access to credit.
        stationary = spectral_diagnostics(absorbing).stationary
        np.testing.assert_allclose(stationary, [0.0, 1.0], atol=1e-6)
