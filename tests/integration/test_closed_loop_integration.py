"""Integration tests: the full credit-scoring closed loop, end to end.

These tests exercise every box of Figure 1 together — population, AI
system, filter, delay — and check the paper-level claims on the resulting
histories: warm-up equal treatment, the initial ordering of the race-wise
default rates, their dwindling towards a common level, and the behaviour of
the fairness assessments on real loop output.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fairness import equal_impact_assessment, equal_treatment_assessment
from repro.core.metrics import demographic_parity_gap, group_average_series
from repro.data.census import Race
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_trial


@pytest.fixture(scope="module")
def trial():
    """One moderately sized trial shared by the whole module."""
    return run_trial(CaseStudyConfig(num_users=300, num_trials=1, seed=2024), trial_index=0)


class TestWarmUpPhase:
    def test_warm_up_years_are_equal_treatment(self, trial):
        decisions = trial.history.decisions_matrix()
        actions = trial.history.actions_matrix()
        warm_up_assessment = equal_treatment_assessment(
            decisions[:2], actions[:2], tolerance=1.0
        )
        assert warm_up_assessment.uniform_signal

    def test_everyone_is_approved_during_warm_up(self, trial):
        decisions = trial.history.decisions_matrix()
        assert decisions[:2].min() == 1.0


class TestPaperShape:
    def test_black_households_start_with_the_highest_default_rate(self, trial):
        groups = {race: np.flatnonzero(trial.races == race) for race in Race}
        series = group_average_series(trial.user_default_rates, groups)
        warm_up_index = 1
        assert series[Race.BLACK][warm_up_index] > series[Race.WHITE][warm_up_index]
        assert series[Race.WHITE][warm_up_index] >= series[Race.ASIAN][warm_up_index]

    def test_race_wise_rates_dwindle_towards_a_common_level(self, trial):
        groups = {race: np.flatnonzero(trial.races == race) for race in Race}
        series = group_average_series(trial.user_default_rates, groups)
        initial_gap = max(series[race][1] for race in Race) - min(
            series[race][1] for race in Race
        )
        final_gap = max(series[race][-1] for race in Race) - min(
            series[race][-1] for race in Race
        )
        assert final_gap < initial_gap

    def test_default_rates_end_up_low_for_every_race(self, trial):
        groups = {race: np.flatnonzero(trial.races == race) for race in Race}
        series = group_average_series(trial.user_default_rates, groups)
        for race in Race:
            assert series[race][-1] < 0.15

    def test_most_users_keep_access_to_credit(self, trial):
        approval = trial.history.approval_rates()
        assert approval[-1] > 0.8

    def test_incomes_grow_over_the_simulated_years(self, trial):
        incomes = trial.history.public_feature_matrix("income")
        assert incomes[-1].mean() > incomes[0].mean()


class TestFairnessAssessmentsOnLoopOutput:
    def test_equal_impact_assessment_runs_on_the_adr_series(self, trial):
        groups = {race: np.flatnonzero(trial.races == race) for race in Race}
        assessment = equal_impact_assessment(
            trial.user_default_rates,
            groups=groups,
            tolerance=0.1,
            already_averaged=True,
        )
        assert set(assessment.group_limits) == set(Race)
        assert assessment.max_group_gap >= 0.0
        assert np.all((assessment.user_limits >= 0.0) & (assessment.user_limits <= 1.0))

    def test_treatment_is_not_uniform_once_the_scorecard_kicks_in(self, trial):
        decisions = trial.history.decisions_matrix()
        actions = trial.history.actions_matrix()
        assessment = equal_treatment_assessment(decisions[2:], actions[2:])
        assert not assessment.uniform_signal

    def test_demographic_parity_gap_is_moderate(self, trial):
        groups = {race: np.flatnonzero(trial.races == race) for race in Race}
        gap = demographic_parity_gap(trial.history.decisions_matrix(), groups)
        assert 0.0 <= gap < 0.5


class TestDeterminism:
    def test_the_same_config_reproduces_the_same_trial(self):
        config = CaseStudyConfig(num_users=60, num_trials=1, seed=555)
        first = run_trial(config, trial_index=0)
        second = run_trial(config, trial_index=0)
        np.testing.assert_array_equal(first.user_default_rates, second.user_default_rates)
        np.testing.assert_array_equal(
            first.history.decisions_matrix(), second.history.decisions_matrix()
        )
