"""Integration tests: every baseline policy runs inside the closed loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    GroupThresholdPolicy,
    IncomeMultiplePolicy,
    StaticCreditScoringSystem,
    UniformLimitPolicy,
)
from repro.core.ai_system import CreditScoringSystem
from repro.credit.lender import Lender
from repro.credit.mortgage import MortgageTerms
from repro.data.census import Race
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_trial


CONFIG = CaseStudyConfig(num_users=120, num_trials=1, seed=31)


class TestBaselinesInsideTheLoop:
    def test_uniform_limit_policy_locks_out_past_defaulters(self):
        trial = run_trial(
            CONFIG,
            trial_index=0,
            policy_factory=lambda cfg, pop: UniformLimitPolicy(),
            terms=MortgageTerms(fixed_principal=50.0),
        )
        decisions = trial.history.decisions_matrix()
        rates = trial.user_default_rates
        # Any user who has ever defaulted must be denied at the next step.
        for step in range(1, decisions.shape[0]):
            defaulted_before = rates[step - 1] > 0
            assert np.all(decisions[step][defaulted_before] == 0)

    def test_income_multiple_policy_keeps_everyone_in_the_market(self):
        trial = run_trial(
            CONFIG,
            trial_index=0,
            policy_factory=lambda cfg, pop: IncomeMultiplePolicy(),
        )
        assert trial.history.decisions_matrix().min() == 1.0

    def test_static_scorecard_runs_to_completion(self):
        trial = run_trial(
            CONFIG,
            trial_index=0,
            policy_factory=lambda cfg, pop: StaticCreditScoringSystem(
                Lender(cutoff=cfg.cutoff, warm_up_rounds=cfg.warm_up_rounds)
            ),
        )
        assert trial.user_default_rates.shape == (CONFIG.num_steps, CONFIG.num_users)

    def test_group_threshold_policy_equalises_approval_rates(self):
        def factory(cfg, population):
            return GroupThresholdPolicy(
                groups=population.groups,
                target_approval_rate=0.8,
                lender=Lender(cutoff=cfg.cutoff, warm_up_rounds=cfg.warm_up_rounds),
            )

        trial = run_trial(CONFIG, trial_index=0, policy_factory=factory)
        decisions = trial.history.decisions_matrix()
        groups = {race: np.flatnonzero(trial.races == race) for race in Race}
        final_rates = [
            decisions[-1][indices].mean() for indices in groups.values() if indices.size >= 5
        ]
        assert max(final_rates) - min(final_rates) < 0.15

    def test_uniform_limit_produces_a_larger_final_gap_than_the_paper_policy(self):
        paper = run_trial(
            CONFIG,
            trial_index=0,
            policy_factory=lambda cfg, pop: CreditScoringSystem(
                Lender(cutoff=cfg.cutoff, warm_up_rounds=cfg.warm_up_rounds)
            ),
        )
        uniform = run_trial(
            CONFIG,
            trial_index=0,
            policy_factory=lambda cfg, pop: UniformLimitPolicy(),
            terms=MortgageTerms(fixed_principal=50.0),
        )
        assert uniform.final_group_gap > paper.final_group_gap
