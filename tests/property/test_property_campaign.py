"""Hypothesis properties of the campaign cache key.

Two families pin the content address's contract:

* **Layout invariance.**  For any grid cell, the key is identical under
  every combination of the spec's run options (``execution``,
  ``max_workers``, ``num_shards``, ``shard_transport``) — the structural
  property that lets an entry written by a serial sweep hit under pooled
  or sharded execution.  The key digests
  :func:`~repro.experiments.runner.trajectory_fingerprint_fields`, which
  simply does not contain those knobs, so the property is exact, not
  statistical.
* **Trajectory sensitivity.**  Perturbing any single trajectory-defining
  field — the seed, the population size, the calendar window, a mortgage
  or model knob, the retrain mode, the arm identity or an arm parameter —
  produces a different key.  A collision here would mean serving one
  configuration's curves as another's.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.cache import job_key
from repro.campaign.spec import ArmRef, CampaignJob
from repro.experiments.config import CaseStudyConfig

SCENARIOS = st.sampled_from(
    [
        ArmRef("baseline"),
        ArmRef("recession"),
        ArmRef("recession", params=(("downshift", 0.2),)),
        ArmRef("widening-gap", params=(("annual_downshift", 0.05),)),
    ]
)
POLICIES = st.sampled_from(
    [
        ArmRef("retraining"),
        ArmRef("static"),
        ArmRef("uniform-limit"),
        ArmRef("epsilon-greedy", params=(("epsilon", 0.1),)),
    ]
)

TRAJECTORY = st.fixed_dictionaries(
    {
        "num_users": st.integers(min_value=10, max_value=5000),
        "num_trials": st.integers(min_value=1, max_value=8),
        "start_year": st.integers(min_value=1990, max_value=2005),
        "end_year": st.integers(min_value=2006, max_value=2030),
        "seed": st.integers(min_value=0, max_value=2**31),
        "income_multiple": st.floats(min_value=1.0, max_value=6.0),
        "cutoff": st.floats(min_value=0.05, max_value=0.95),
        "warm_up_rounds": st.integers(min_value=0, max_value=4),
        "history_mode": st.sampled_from(["full", "aggregate"]),
        "retrain_mode": st.sampled_from(["exact", "compressed"]),
        "warm_start": st.booleans(),
    }
)

LAYOUTS = st.fixed_dictionaries(
    {
        "execution": st.sampled_from([None, "auto", "serial", "batch", "pool", "shard"]),
        "parallel": st.booleans(),
        "max_workers": st.sampled_from([None, 1, 2, 8]),
        "num_shards": st.sampled_from([1, 2, 8]),
        "shard_parallel": st.booleans(),
        "trial_batch": st.booleans(),
    }
)


def _job(scenario: ArmRef, policy: ArmRef, config: CaseStudyConfig) -> CampaignJob:
    return CampaignJob(
        index=0, job_id="cell", scenario=scenario, policy=policy, config=config
    )


def _config(fields: dict, layout: dict | None = None) -> CaseStudyConfig:
    overrides = dict(fields)
    if layout:
        execution = layout["execution"]
        if execution is not None:
            # The execution knob is mutually exclusive with the legacy
            # switches; exercise it with the hints it does accept.
            overrides.update(
                execution=execution,
                max_workers=layout["max_workers"],
                num_shards=layout["num_shards"],
            )
        else:
            overrides.update(
                parallel=layout["parallel"],
                max_workers=layout["max_workers"],
                num_shards=layout["num_shards"],
                shard_parallel=layout["shard_parallel"],
                trial_batch=layout["trial_batch"],
            )
    return CaseStudyConfig(**overrides)


@settings(max_examples=60, deadline=None)
@given(scenario=SCENARIOS, policy=POLICIES, fields=TRAJECTORY, layout=LAYOUTS)
def test_key_is_invariant_under_execution_layout(scenario, policy, fields, layout):
    plain = _job(scenario, policy, _config(fields))
    dressed = _job(scenario, policy, _config(fields, layout))
    assert job_key(plain) == job_key(dressed)


@settings(max_examples=40, deadline=None)
@given(scenario=SCENARIOS, policy=POLICIES, fields=TRAJECTORY)
def test_key_is_deterministic(scenario, policy, fields):
    assert job_key(_job(scenario, policy, _config(fields))) == job_key(
        _job(scenario, policy, _config(fields))
    )


@settings(max_examples=40, deadline=None)
@given(scenario=SCENARIOS, policy=POLICIES, fields=TRAJECTORY)
def test_key_is_sensitive_to_every_trajectory_field(scenario, policy, fields):
    base_job = _job(scenario, policy, _config(fields))
    base_key = job_key(base_job)
    config = base_job.config

    perturbed = [
        dataclasses.replace(config, num_users=config.num_users + 1),
        dataclasses.replace(config, num_trials=config.num_trials + 1),
        dataclasses.replace(config, start_year=config.start_year - 1),
        dataclasses.replace(config, end_year=config.end_year + 1),
        dataclasses.replace(config, seed=config.seed + 1),
        dataclasses.replace(config, income_multiple=config.income_multiple + 0.25),
        dataclasses.replace(config, annual_rate=config.annual_rate + 0.001),
        dataclasses.replace(config, living_cost=config.living_cost + 1.0),
        dataclasses.replace(
            config, repayment_sensitivity=config.repayment_sensitivity + 0.5
        ),
        dataclasses.replace(config, cutoff=min(0.99, config.cutoff + 0.01)),
        dataclasses.replace(config, warm_up_rounds=config.warm_up_rounds + 1),
        dataclasses.replace(config, income_threshold=config.income_threshold + 1.0),
        dataclasses.replace(
            config,
            retrain_mode="compressed" if config.retrain_mode == "exact" else "exact",
        ),
        dataclasses.replace(config, warm_start=not config.warm_start),
        dataclasses.replace(
            config,
            history_mode="aggregate" if config.history_mode == "full" else "full",
        ),
    ]
    keys = [job_key(_job(scenario, policy, variant)) for variant in perturbed]
    assert base_key not in keys
    assert len(set(keys)) == len(keys)


@settings(max_examples=40, deadline=None)
@given(fields=TRAJECTORY)
def test_key_is_sensitive_to_the_arm_identity(fields):
    config = _config(fields)
    cells = [
        (ArmRef("baseline"), ArmRef("retraining")),
        (ArmRef("recession"), ArmRef("retraining")),
        (ArmRef("recession", params=(("downshift", 0.2),)), ArmRef("retraining")),
        (ArmRef("baseline"), ArmRef("static")),
        (ArmRef("baseline"), ArmRef("epsilon-greedy", params=(("epsilon", 0.1),))),
        (ArmRef("baseline"), ArmRef("epsilon-greedy", params=(("epsilon", 0.2),))),
    ]
    keys = [job_key(_job(scenario, policy, config)) for scenario, policy in cells]
    assert len(set(keys)) == len(keys)
