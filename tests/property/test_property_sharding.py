"""Hypothesis properties of the sharded execution layer.

Three families of invariants:

* :class:`~repro.core.sharding.ShardPlan` partitions are disjoint,
  covering and order-preserving for any population size, and worker
  assignments group the shards contiguously for any worker count;
* a :class:`~repro.core.filters.DefaultRateFilter` split into per-shard
  filters and merged back reports *exactly* the unsharded observation on
  any 0/1 decision/action stream (offers and repayments are integer
  counts);
* the sharded :class:`~repro.core.population.CreditPopulation` draw is
  shard-local: slicing the population at shard boundaries and replaying
  the same shard streams reproduces the parent's incomes bit for bit.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filters import DefaultRateFilter
from repro.core.sharding import ShardPlan
from repro.core.population import CreditPopulation
from repro.data.synthetic import PopulationSpec, generate_population
from repro.utils.rng import shard_step_generator


@st.composite
def plans(draw):
    num_users = draw(st.integers(min_value=1, max_value=5000))
    if draw(st.booleans()):
        return ShardPlan.canonical(num_users)
    num_shards = draw(st.integers(min_value=1, max_value=min(16, num_users)))
    return ShardPlan.with_shards(num_users, num_shards)


class TestShardPlanProperties:
    @given(plan=plans())
    @settings(max_examples=80, deadline=None)
    def test_partition_is_disjoint_covering_order_preserving(self, plan):
        seen = np.concatenate(
            [np.arange(lo, hi) for lo, hi in plan.bounds]
        )
        # Order-preserving concatenation of disjoint ranges == identity.
        assert np.array_equal(seen, np.arange(plan.num_users))
        assert all(hi > lo for lo, hi in plan.bounds)

    @given(plan=plans(), workers=st.integers(min_value=1, max_value=32))
    @settings(max_examples=80, deadline=None)
    def test_worker_ranges_partition_the_shards(self, plan, workers):
        ranges = plan.worker_ranges(workers)
        covered = np.concatenate(
            [np.arange(start, stop) for start, stop in ranges]
        )
        assert np.array_equal(covered, np.arange(plan.num_shards))
        # Each worker's user range is the contiguous union of its shards.
        for start, stop in ranges:
            lo, hi = plan.user_range(start, stop)
            assert lo == plan.bounds[start][0]
            assert hi == plan.bounds[stop - 1][1]

    @given(plan=plans())
    @settings(max_examples=50, deadline=None)
    def test_localized_plans_rebase_to_zero(self, plan):
        for start, stop in plan.worker_ranges(3):
            local = plan.localized(start, stop)
            assert local.bounds[0][0] == 0
            assert local.sizes == plan.sizes[start:stop]


class TestShardedFilterProperties:
    @given(
        num_users=st.integers(min_value=2, max_value=60),
        num_steps=st.integers(min_value=1, max_value=8),
        num_shards=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        prior=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_sharded_filters_merge_to_the_unsharded_state(
        self, num_users, num_steps, num_shards, seed, prior
    ):
        plan = ShardPlan.with_shards(num_users, min(num_shards, num_users))
        rng = np.random.default_rng(seed)
        central = DefaultRateFilter(num_users=num_users, prior_rate=prior)
        shard_filters = [
            central.shard_slice(lo, hi) for lo, hi in plan.bounds
        ]
        for step in range(num_steps):
            decisions = rng.integers(0, 2, size=num_users).astype(float)
            actions = (
                rng.integers(0, 2, size=num_users).astype(float) * decisions
            )
            central_obs = central.update(decisions, actions, step)
            shard_obs = [
                shard_filter.update(decisions[lo:hi], actions[lo:hi], step)
                for shard_filter, (lo, hi) in zip(shard_filters, plan.bounds)
            ]
            # Concatenated per-shard rates are exactly the central rates.
            assert np.array_equal(
                central_obs["user_default_rates"],
                np.concatenate(
                    [obs["user_default_rates"] for obs in shard_obs]
                ),
            )
        merged = shard_filters[0]
        for shard_filter in shard_filters[1:]:
            merged = merged.merge(shard_filter)
        merged_obs = merged.observation()
        central_obs = central.observation()
        assert np.array_equal(
            merged_obs["user_default_rates"], central_obs["user_default_rates"]
        )
        assert merged_obs["portfolio_rate"] == central_obs["portfolio_rate"]
        # Round-trip through export_state preserves everything.
        rebuilt = DefaultRateFilter.from_state(merged.export_state())
        assert np.array_equal(
            rebuilt.observation()["user_default_rates"],
            central_obs["user_default_rates"],
        )


class TestShardedPopulationProperties:
    @given(
        size=st.integers(min_value=8, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        step=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=25, deadline=None)
    def test_sharded_income_draw_is_shard_local(self, size, seed, step):
        population = CreditPopulation(
            population=generate_population(
                PopulationSpec(size=size), np.random.default_rng(seed)
            )
        )
        plan = population.shard_plan
        rngs = [
            shard_step_generator(seed, shard, step)
            for shard in range(plan.num_shards)
        ]
        full = population.begin_step(step, rngs)["income"]
        # Every worker grouping replays its users' slice exactly.
        for workers in (2, plan.num_shards):
            for start, stop in plan.worker_ranges(workers):
                lo, hi = plan.user_range(start, stop)
                piece = population.shard_slice(lo, hi)
                piece_rngs = [
                    shard_step_generator(seed, shard, step)
                    for shard in range(start, stop)
                ]
                incomes = piece.begin_step(step, piece_rngs)["income"]
                assert np.array_equal(full[lo:hi], incomes)
