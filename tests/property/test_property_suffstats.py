"""Property-based tests on the sufficient-statistics retraining tables.

Four families of properties pin :class:`repro.scoring.suffstats.CompressedDesign`:

* **Conservation** — the ``int64`` multiplicities always sum to the number
  of (offered) input rows, and unpacking the keys recovers exactly the set
  of distinct input rows.
* **Sufficiency** — the weighted log-likelihood of the compressed table
  equals the row-level log-likelihood of the uncompressed training set at
  any parameter vector (up to float reassociation), i.e. the dedup loses
  nothing the logistic objective can see.
* **Shard merge** — merging per-shard count tables is associative,
  commutative, and *exactly* (integer-exactly) equal to compressing the
  whole population in one pass, for every random partition.
* **Fit agreement** — the weighted IRLS fit on the compressed table agrees
  with the row-level fit on random streams to solver tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scoring.logistic import LogisticRegression
from repro.scoring.suffstats import CompressedDesign, merge_tables

sizes = st.integers(min_value=1, max_value=300)
seeds = st.integers(min_value=0, max_value=10_000)
thetas = st.tuples(
    st.floats(min_value=-5, max_value=5),
    st.floats(min_value=-5, max_value=5),
    st.floats(min_value=-5, max_value=5),
)


def loop_like_rows(n: int, seed: int):
    """Binary codes, small-integer-ratio rates and binary labels.

    The rates are ratios ``defaults / offers`` with small denominators —
    exactly the value set the closed loop's default-rate filter produces,
    and the degeneracy the compression exploits.
    """
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 2, n).astype(float)
    offers = rng.integers(1, 9, n)
    rates = rng.binomial(offers, rng.uniform(0.05, 0.6)) / offers
    labels = rng.integers(0, 2, n).astype(float)
    return codes, rates, labels


class TestConservation:
    @settings(max_examples=40, deadline=None)
    @given(n=sizes, seed=seeds)
    def test_counts_sum_to_n(self, n, seed):
        codes, rates, labels = loop_like_rows(n, seed)
        table = CompressedDesign.from_arrays(codes, rates, labels)
        assert table.num_rows == n
        assert int(table.counts.min()) >= 1

    @settings(max_examples=40, deadline=None)
    @given(n=sizes, seed=seeds)
    def test_offered_mask_conserves_offered_rows(self, n, seed):
        codes, rates, labels = loop_like_rows(n, seed)
        offered = np.random.default_rng(seed + 1).integers(0, 2, n).astype(float)
        table = CompressedDesign.from_arrays(codes, rates, labels, offered=offered)
        assert table.num_rows == int(offered.sum())

    @settings(max_examples=40, deadline=None)
    @given(n=sizes, seed=seeds)
    def test_unique_rows_round_trip(self, n, seed):
        codes, rates, labels = loop_like_rows(n, seed)
        table = CompressedDesign.from_arrays(codes, rates, labels)
        expected = {}
        for row in zip(codes, rates, labels):
            key = (float(row[0]), float(row[1]), float(row[2]))
            expected[key] = expected.get(key, 0) + 1
        observed = {
            (float(c), float(r), float(y)): int(count)
            for c, r, y, count in zip(
                table.codes, table.rates, table.labels, table.counts
            )
        }
        assert observed == expected


class TestSufficiency:
    @settings(max_examples=40, deadline=None)
    @given(n=sizes, seed=seeds, theta=thetas)
    def test_weighted_log_likelihood_round_trips(self, n, seed, theta):
        codes, rates, labels = loop_like_rows(n, seed)
        table = CompressedDesign.from_arrays(codes, rates, labels)
        parameters = np.asarray(theta)
        z = np.clip(
            parameters[0] + codes * parameters[1] + rates * parameters[2],
            -30.0,
            30.0,
        )
        row_level = float(
            np.sum(
                labels * -np.log1p(np.exp(-z))
                + (1.0 - labels) * -np.log1p(np.exp(z))
            )
        )
        assert table.weighted_log_likelihood(parameters) == pytest.approx(
            row_level, rel=1e-10, abs=1e-10
        )


class TestShardMerge:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=3, max_value=300), seed=seeds)
    def test_merge_equals_whole_population_compression(self, n, seed):
        codes, rates, labels = loop_like_rows(n, seed)
        rng = np.random.default_rng(seed + 7)
        cuts = sorted(rng.integers(0, n + 1, size=2))
        bounds = [0, int(cuts[0]), int(cuts[1]), n]
        shards = [
            CompressedDesign.from_arrays(
                codes[lo:hi], rates[lo:hi], labels[lo:hi]
            )
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        whole = CompressedDesign.from_arrays(codes, rates, labels)
        merged = merge_tables(shards)
        np.testing.assert_array_equal(merged.keys, whole.keys)
        np.testing.assert_array_equal(merged.counts, whole.counts)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=3, max_value=200), seed=seeds)
    def test_merge_is_associative_and_commutative(self, n, seed):
        codes, rates, labels = loop_like_rows(n, seed)
        third = max(1, n // 3)
        a = CompressedDesign.from_arrays(
            codes[:third], rates[:third], labels[:third]
        )
        b = CompressedDesign.from_arrays(
            codes[third : 2 * third],
            rates[third : 2 * third],
            labels[third : 2 * third],
        )
        c = CompressedDesign.from_arrays(
            codes[2 * third :], rates[2 * third :], labels[2 * third :]
        )
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = c.merge(a).merge(b)
        for other in (right, swapped):
            np.testing.assert_array_equal(left.keys, other.keys)
            np.testing.assert_array_equal(left.counts, other.counts)


class TestFitAgreement:
    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=20, max_value=400), seed=seeds)
    def test_compressed_fit_matches_row_level_fit(self, n, seed):
        codes, rates, labels = loop_like_rows(n, seed)
        table = CompressedDesign.from_arrays(codes, rates, labels)
        exact = LogisticRegression().fit(np.column_stack([codes, rates]), labels)
        compressed = LogisticRegression().fit(
            table.design_matrix(), table.labels, sample_weights=table.counts
        )
        np.testing.assert_allclose(
            compressed.coefficients, exact.coefficients, atol=1e-7
        )
        assert compressed.intercept == pytest.approx(exact.intercept, abs=1e-7)
