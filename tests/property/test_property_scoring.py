"""Property-based tests on the scoring substrate's invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scoring.calibration import ScoreScaler
from repro.scoring.cutoff import CutoffPolicy
from repro.scoring.logistic import LogisticRegression
from repro.scoring.scorecard import Scorecard, ScorecardFactor, paper_table1_scorecard


class TestScorecardProperties:
    @given(st.floats(0.0, 1.0), st.floats(0.0, 300.0))
    @settings(max_examples=80, deadline=None)
    def test_paper_card_score_is_bounded(self, adr, income):
        card = paper_table1_scorecard()
        score = card.score({"average_default_rate": adr, "income": income})
        assert -8.17 - 1e-9 <= score <= 5.77 + 1e-9

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0), st.floats(0.0, 300.0))
    @settings(max_examples=80, deadline=None)
    def test_paper_card_is_monotone_decreasing_in_the_default_rate(
        self, adr_a, adr_b, income
    ):
        card = paper_table1_scorecard()
        low, high = sorted([adr_a, adr_b])
        score_low = card.score({"average_default_rate": low, "income": income})
        score_high = card.score({"average_default_rate": high, "income": income})
        assert score_high <= score_low + 1e-12

    @given(
        st.lists(st.floats(-10.0, 10.0), min_size=1, max_size=5),
        st.floats(-5.0, 5.0),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_scorecard_score_is_linear_in_the_features(self, points, base, rows, seed):
        factors = [ScorecardFactor(name=f"f{i}", points=p) for i, p in enumerate(points)]
        card = Scorecard(factors=factors, base_score=base)
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(rows, len(points)))
        b = rng.normal(size=(rows, len(points)))
        combined = card.score_matrix(a + b)
        separate = card.score_matrix(a) + card.score_matrix(b) - base
        np.testing.assert_allclose(combined, separate, atol=1e-9)


class TestCutoffProperties:
    @given(
        st.lists(st.floats(-10.0, 10.0), min_size=1, max_size=50),
        st.floats(-5.0, 5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_raising_the_cutoff_never_approves_more_users(self, scores, cutoff):
        lenient = CutoffPolicy(cutoff=cutoff)
        strict = CutoffPolicy(cutoff=cutoff + 1.0)
        assert strict.decide(scores).sum() <= lenient.decide(scores).sum()

    @given(st.lists(st.floats(-10.0, 10.0), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_decisions_are_binary(self, scores):
        decisions = CutoffPolicy().decide(scores)
        assert set(np.unique(decisions)).issubset({0, 1})


class TestLogisticProperties:
    @given(st.integers(min_value=10, max_value=80), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_predicted_probabilities_are_always_valid(self, n, seed):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(n, 2))
        labels = rng.integers(0, 2, size=n)
        model = LogisticRegression()
        model.fit(features, labels)
        probabilities = model.predict_probability(features)
        assert np.all((probabilities >= 0.0) & (probabilities <= 1.0))
        assert np.all(np.isfinite(probabilities))

    @given(st.integers(min_value=20, max_value=100), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_decision_function_is_monotone_in_a_positively_weighted_feature(self, n, seed):
        rng = np.random.default_rng(seed)
        feature = rng.normal(size=n)
        labels = (feature + 0.3 * rng.normal(size=n) > 0).astype(int)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        model = LogisticRegression()
        model.fit(feature, labels)
        grid = np.linspace(-3, 3, 20)
        values = model.decision_function(grid)
        signs = np.sign(np.diff(values))
        assert np.all(signs == signs[0]) or np.all(signs == 0)


class TestScalerProperties:
    @given(
        st.floats(100.0, 1000.0),
        st.floats(1.0, 100.0),
        st.floats(5.0, 100.0),
        st.lists(st.floats(-5.0, 5.0), min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_is_the_identity(self, base_score, base_odds, pdo, log_odds):
        scaler = ScoreScaler(
            base_score=base_score, base_odds=base_odds, points_to_double_odds=pdo
        )
        recovered = scaler.log_odds_from_points(scaler.points_from_log_odds(log_odds))
        np.testing.assert_allclose(recovered, log_odds, atol=1e-6)

    @given(st.lists(st.floats(-5.0, 5.0), min_size=2, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_scaling_preserves_the_score_ordering(self, log_odds):
        scaler = ScoreScaler()
        points = scaler.points_from_log_odds(np.sort(log_odds))
        assert np.all(np.diff(points) >= -1e-9)
