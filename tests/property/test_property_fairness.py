"""Property-based tests on the fairness assessments and loop metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairness import equal_impact_assessment, equal_treatment_assessment
from repro.core.metrics import default_rate_series, demographic_parity_gap
from repro.data.census import Race


def random_binary_matrix(rows: int, cols: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 2, size=(rows, cols)).astype(float)


matrix_shapes = st.tuples(
    st.integers(min_value=2, max_value=30), st.integers(min_value=2, max_value=15)
)


class TestEqualImpactProperties:
    @given(matrix_shapes, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_user_limits_stay_within_the_outcome_range(self, shape, seed):
        outcomes = random_binary_matrix(*shape, seed)
        assessment = equal_impact_assessment(outcomes)
        assert np.all(assessment.user_limits >= outcomes.min() - 1e-12)
        assert np.all(assessment.user_limits <= outcomes.max() + 1e-12)
        assert assessment.max_user_gap >= 0.0

    @given(matrix_shapes, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_identical_columns_always_satisfy_equal_impact(self, shape, seed):
        rows, cols = shape
        column = np.random.default_rng(seed).random(rows)
        outcomes = np.tile(column[:, None], (1, cols))
        assessment = equal_impact_assessment(outcomes, tolerance=1e-9)
        assert assessment.max_user_gap == pytest.approx(0.0, abs=1e-12)
        assert assessment.satisfied

    @given(matrix_shapes, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_group_gap_never_exceeds_user_gap(self, shape, seed):
        outcomes = random_binary_matrix(*shape, seed)
        cols = outcomes.shape[1]
        half = cols // 2
        groups = {
            Race.BLACK: np.arange(0, half),
            Race.WHITE: np.arange(half, cols),
        }
        assessment = equal_impact_assessment(outcomes, groups=groups)
        assert assessment.max_group_gap <= assessment.max_user_gap + 1e-12


class TestEqualTreatmentProperties:
    @given(matrix_shapes, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_signal_gap_is_zero_iff_decisions_are_uniform(self, shape, seed):
        rows, cols = shape
        rng = np.random.default_rng(seed)
        uniform_decisions = np.tile(rng.integers(0, 2, size=(rows, 1)), (1, cols)).astype(float)
        responses = rng.random((rows, cols))
        assessment = equal_treatment_assessment(uniform_decisions, responses)
        assert assessment.uniform_signal
        assert np.all(assessment.per_step_signal_gap == 0.0)

    @given(matrix_shapes, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_response_gap_is_bounded_by_the_response_range(self, shape, seed):
        rng = np.random.default_rng(seed)
        decisions = np.ones(shape)
        responses = rng.random(shape)
        assessment = equal_treatment_assessment(decisions, responses)
        assert assessment.max_response_gap <= responses.max() - responses.min() + 1e-12


class TestMetricsProperties:
    @given(matrix_shapes, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_default_rate_series_stays_in_the_unit_interval(self, shape, seed):
        rng = np.random.default_rng(seed)
        decisions = rng.integers(0, 2, size=shape).astype(float)
        actions = decisions * rng.integers(0, 2, size=shape).astype(float)
        rates = default_rate_series(decisions, actions)
        assert np.all((rates >= 0.0) & (rates <= 1.0))

    @given(matrix_shapes, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_demographic_parity_gap_is_in_the_unit_interval(self, shape, seed):
        rows, cols = shape
        decisions = random_binary_matrix(rows, cols, seed)
        half = cols // 2
        groups = {
            Race.BLACK: np.arange(0, half),
            Race.WHITE: np.arange(half, cols),
        }
        gap = demographic_parity_gap(decisions, groups)
        assert 0.0 <= gap <= 1.0
