"""Property-based tests on the Markov/IFS substrate's invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.ifs import IteratedFunctionSystem
from repro.markov.invariant import total_variation_distance, wasserstein_distance_1d
from repro.markov.maps import AffineMap
from repro.markov.operators import stationary_distribution


def random_stochastic_matrix(size: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    matrix = rng.random((size, size)) + 0.05
    return matrix / matrix.sum(axis=1, keepdims=True)


class TestStationaryDistributionProperties:
    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_stationary_vector_is_a_fixed_point(self, size, seed):
        matrix = random_stochastic_matrix(size, seed)
        pi = stationary_distribution(matrix)
        np.testing.assert_allclose(pi @ matrix, pi, atol=1e-6)
        assert pi.min() >= -1e-12
        assert pi.sum() == pytest.approx(1.0)


class TestIFSProperties:
    @given(
        st.floats(0.05, 0.9),
        st.floats(-1.0, 1.0),
        st.floats(-1.0, 1.0),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_contractive_ifs_orbits_stay_bounded(self, slope, offset_a, offset_b, seed):
        ifs = IteratedFunctionSystem(
            maps=[AffineMap.scalar(slope, offset_a), AffineMap.scalar(slope, offset_b)],
            probabilities=[0.5, 0.5],
        )
        orbit = ifs.orbit(np.array([50.0]), 300, seed)
        bound = max(abs(offset_a), abs(offset_b)) / (1.0 - slope) + 1.0
        assert np.all(np.abs(orbit[150:]) <= bound)

    @given(st.floats(0.05, 0.9), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_average_contraction_estimate_matches_the_slope(self, slope, seed):
        ifs = IteratedFunctionSystem(
            maps=[AffineMap.scalar(slope, 0.0), AffineMap.scalar(slope, 1.0)],
            probabilities=[0.5, 0.5],
        )
        rng = np.random.default_rng(seed)
        pairs = [(rng.normal(size=1), rng.normal(size=1)) for _ in range(20)]
        estimate = ifs.average_contraction_estimate(pairs)
        assert estimate == pytest.approx(slope, abs=1e-9)


class TestDistanceProperties:
    @given(
        st.lists(st.floats(-50.0, 50.0), min_size=2, max_size=60),
        st.lists(st.floats(-50.0, 50.0), min_size=2, max_size=60),
    )
    @settings(max_examples=50, deadline=None)
    def test_wasserstein_is_non_negative_and_symmetric(self, a, b):
        forward = wasserstein_distance_1d(a, b)
        backward = wasserstein_distance_1d(b, a)
        assert forward >= 0.0
        assert forward == pytest.approx(backward, abs=1e-9)

    @given(st.lists(st.floats(-50.0, 50.0), min_size=2, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_distance_to_itself_is_zero(self, a):
        assert wasserstein_distance_1d(a, a) == pytest.approx(0.0, abs=1e-12)
        assert total_variation_distance(a, a) == pytest.approx(0.0, abs=1e-12)

    @given(
        st.lists(st.floats(-50.0, 50.0), min_size=2, max_size=60),
        st.lists(st.floats(-50.0, 50.0), min_size=2, max_size=60),
        st.floats(-10.0, 10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_wasserstein_translation_invariance(self, a, b, shift):
        base = wasserstein_distance_1d(a, b)
        shifted = wasserstein_distance_1d(
            np.asarray(a) + shift, np.asarray(b) + shift
        )
        assert shifted == pytest.approx(base, abs=1e-6)
