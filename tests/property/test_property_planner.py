"""Hypothesis properties of the unified execution planner.

Three families of invariants over arbitrary workload shapes and hosts:

* **Every plan is well-formed.**  For any legal ``(execution, trials,
  users, steps, modes, checkpoint knobs, cpu_count, hints)`` input,
  :func:`~repro.core.planner.plan_execution` returns an
  :class:`~repro.core.planner.ExecutionPlan` that passes its own
  ``validate()``, never pairs the batched engine with pools or
  checkpointing, never exceeds the canonical shard ceiling, and never
  pools more trial workers than trials.
* **Planning is deterministic.**  Fixed inputs (with ``calibrate=False``)
  produce equal plans — the property that makes ``execution="auto"``
  reproducible in CI matrix cells and resumable across runs.
* **Plans round-trip.**  ``from_dict(to_dict(plan)) == plan``, including
  through an actual JSON encode/decode, so a plan can be logged next to a
  bench record or checkpoint without losing identity.

Forbidden combinations are covered as rejection properties: the batch
mode with checkpoint knobs, the ``execution`` knob alongside any legacy
layout switch, and degenerate inputs all raise ``ValueError`` before any
work starts.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import (
    EXECUTION_MODES,
    ExecutionPlan,
    plan_execution,
    validate_execution_settings,
)
from repro.core.sharding import max_worker_shards

LAYOUTS = ("serial", "batch", "pool", "shard", "pool+shard")


@st.composite
def plan_inputs(draw):
    execution = draw(st.sampled_from(EXECUTION_MODES))
    if execution == "batch":
        # The only checkpoint knobs batch accepts are the disabled ones.
        checkpoint_every, resume = 0, False
    else:
        checkpoint_every = draw(st.integers(min_value=0, max_value=16))
        resume = draw(st.booleans())
    return dict(
        execution=execution,
        trials=draw(st.integers(min_value=1, max_value=64)),
        users=draw(st.integers(min_value=1, max_value=1_000_000)),
        steps=draw(st.integers(min_value=0, max_value=500)),
        history_mode=draw(st.sampled_from(("full", "aggregate"))),
        retrain_mode=draw(st.sampled_from(("exact", "compressed"))),
        checkpoint_every=checkpoint_every,
        resume=resume,
        cpu_count=draw(st.integers(min_value=1, max_value=256)),
        max_workers=draw(st.none() | st.integers(min_value=1, max_value=64)),
        num_shards=draw(st.none() | st.integers(min_value=1, max_value=64)),
    )


class TestPlansAreAlwaysWellFormed:
    @given(inputs=plan_inputs())
    @settings(max_examples=200, deadline=None)
    def test_plan_validates_and_respects_resources(self, inputs):
        plan = plan_execution(**inputs)
        plan.validate()  # no forbidden combination survives planning
        assert plan.execution == inputs["execution"]
        assert plan.layout in LAYOUTS
        assert plan.cpu_count == inputs["cpu_count"]
        # The batched engine owns every trial in one process.
        assert not (plan.trial_batch and (plan.parallel or plan.shard_parallel))
        # Checkpointing runs never land on the batched engine.
        if inputs["checkpoint_every"] > 0 or inputs["resume"]:
            assert not plan.trial_batch
        # Pool workers never outnumber trials (or the explicit cap).
        if plan.parallel:
            assert 1 <= plan.max_workers <= inputs["trials"]
            if inputs["max_workers"] is not None:
                assert plan.max_workers <= inputs["max_workers"]
        # Shard workers stay within the canonical ceiling.
        if plan.shard_parallel:
            assert 2 <= plan.num_shards <= max_worker_shards(inputs["users"])
        # A serial layout carries no stray switches.
        if plan.layout == "serial":
            assert not plan.trial_batch
            assert not plan.parallel
            assert not plan.shard_parallel
            assert plan.num_shards == 1

    @given(inputs=plan_inputs())
    @settings(max_examples=100, deadline=None)
    def test_layout_matches_switches(self, inputs):
        plan = plan_execution(**inputs)
        expected = {
            (False, False, False): "serial",
            (True, False, False): "batch",
            (False, True, False): "pool",
            (False, False, True): "shard",
            (False, True, True): "pool+shard",
        }[(plan.trial_batch, plan.parallel, plan.shard_parallel)]
        assert plan.layout == expected
        assert plan.layout.split("+")[0] in plan.describe()


class TestPlanningIsDeterministic:
    @given(inputs=plan_inputs())
    @settings(max_examples=100, deadline=None)
    def test_fixed_inputs_fix_the_plan(self, inputs):
        assert plan_execution(**inputs) == plan_execution(**inputs)


class TestPlansRoundTrip:
    @given(inputs=plan_inputs())
    @settings(max_examples=100, deadline=None)
    def test_dict_round_trip(self, inputs):
        plan = plan_execution(**inputs)
        assert ExecutionPlan.from_dict(plan.to_dict()) == plan

    @given(inputs=plan_inputs())
    @settings(max_examples=100, deadline=None)
    def test_json_round_trip(self, inputs):
        plan = plan_execution(**inputs)
        payload = json.loads(json.dumps(plan.to_dict()))
        assert ExecutionPlan.from_dict(payload) == plan


class TestForbiddenCombosAreRejected:
    @given(
        checkpoint_every=st.integers(min_value=1, max_value=16),
        resume=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_batch_never_plans_with_checkpointing(self, checkpoint_every, resume):
        with pytest.raises(ValueError, match="incompatible with checkpointing"):
            plan_execution(
                "batch",
                trials=4,
                users=100,
                steps=10,
                checkpoint_every=checkpoint_every,
                resume=resume,
            )

    @given(
        execution=st.sampled_from(EXECUTION_MODES),
        legacy=st.sampled_from(("parallel", "trial_batch", "shard_parallel")),
    )
    @settings(max_examples=50, deadline=None)
    def test_legacy_switches_never_combine_with_execution(self, execution, legacy):
        with pytest.raises(ValueError, match="legacy layout switches"):
            validate_execution_settings(execution, **{legacy: True})

    @given(trials=st.integers(max_value=0))
    @settings(max_examples=20, deadline=None)
    def test_degenerate_trials_are_rejected(self, trials):
        with pytest.raises(ValueError):
            plan_execution("auto", trials=trials, users=10, steps=5)

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="execution must be one of"):
            plan_execution("turbo", trials=1, users=10, steps=5)
