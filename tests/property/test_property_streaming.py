"""Property-based tests on the streaming aggregation subsystem.

Two families of properties pin :class:`repro.core.streaming.StreamingAggregator`:

* **Stream/batch agreement** — feeding a random decision/action stream step
  by step must agree *bit for bit* with the batch ``recompute_*`` /
  :func:`~repro.core.metrics.group_average_series` formulations evaluated
  on the materialised ``(steps, users)`` matrices (the aggregator replays
  the exact float operations of the full-history engine, including the
  sequential group summation order — see ``sequential_sum``).
* **Shard merge** — aggregating two disjoint user shards and merging must
  equal aggregating the concatenated stream.  Integer-valued state (offer
  and repayment counts, minima/maxima, group sizes) merges exactly; the
  floating-point group sums merge up to reassociation error, and exactly
  whenever every partial sum is representable (dyadic action values), which
  a dedicated property asserts.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import SimulationHistory
from repro.core.metrics import group_average_series, group_approval_series
from repro.core.streaming import StreamingAggregator, sequential_sum


def _random_stream(num_steps: int, num_users: int, seed: int):
    """Return a deterministic 0/1 decision stream and 0/1 action stream."""
    rng = np.random.default_rng(seed)
    decisions = rng.integers(0, 2, size=(num_steps, num_users)).astype(float)
    actions = (
        rng.integers(0, 2, size=(num_steps, num_users)).astype(float) * decisions
    )
    return decisions, actions


def _random_partition(num_users: int, seed: int):
    """Split the users into two or three labelled groups (possibly empty)."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 3, size=num_users)
    return {key: np.flatnonzero(labels == key) for key in range(3)}


def _fill_aggregator(decisions, actions, groups):
    aggregator = StreamingAggregator(decisions.shape[1], groups=groups)
    for step in range(decisions.shape[0]):
        aggregator.update(decisions[step], actions[step])
    return aggregator


stream_shapes = st.tuples(
    st.integers(min_value=1, max_value=25), st.integers(min_value=1, max_value=40)
)
seeds = st.integers(min_value=0, max_value=10_000)


class TestStreamMatchesBatchRecompute:
    @given(stream_shapes, seeds)
    @settings(max_examples=40, deadline=None)
    def test_group_default_rates_match_batch_formula(self, shape, seed):
        num_steps, num_users = shape
        decisions, actions = _random_stream(num_steps, num_users, seed)
        groups = _random_partition(num_users, seed + 1)
        aggregator = _fill_aggregator(decisions, actions, groups)

        history = SimulationHistory()
        for step in range(num_steps):
            history.record_step(step, {}, decisions[step], actions[step], {})
        batch = group_average_series(history.recompute_running_default_rates(), groups)
        streamed = aggregator.group_default_rate_series()
        for key in groups:
            np.testing.assert_array_equal(streamed[key], batch[key])

    @given(stream_shapes, seeds)
    @settings(max_examples=40, deadline=None)
    def test_group_action_averages_match_batch_formula(self, shape, seed):
        num_steps, num_users = shape
        decisions, actions = _random_stream(num_steps, num_users, seed)
        groups = _random_partition(num_users, seed + 2)
        aggregator = _fill_aggregator(decisions, actions, groups)

        history = SimulationHistory()
        for step in range(num_steps):
            history.record_step(step, {}, decisions[step], actions[step], {})
        batch = group_average_series(
            history.recompute_running_action_averages(), groups
        )
        streamed = aggregator.group_action_average_series()
        for key in groups:
            np.testing.assert_array_equal(streamed[key], batch[key])

    @given(stream_shapes, seeds)
    @settings(max_examples=40, deadline=None)
    def test_approval_series_match_batch_formula(self, shape, seed):
        num_steps, num_users = shape
        decisions, actions = _random_stream(num_steps, num_users, seed)
        groups = _random_partition(num_users, seed + 3)
        aggregator = _fill_aggregator(decisions, actions, groups)

        history = SimulationHistory()
        for step in range(num_steps):
            history.record_step(step, {}, decisions[step], actions[step], {})
        np.testing.assert_array_equal(
            aggregator.approval_rate_series(), history.recompute_approval_rates()
        )
        batch = group_approval_series(history.decisions_matrix(), groups)
        streamed = aggregator.group_approval_series()
        for key in groups:
            np.testing.assert_array_equal(streamed[key], batch[key])

    @given(stream_shapes, seeds)
    @settings(max_examples=40, deadline=None)
    def test_rate_moments_match_the_rate_matrix(self, shape, seed):
        num_steps, num_users = shape
        decisions, actions = _random_stream(num_steps, num_users, seed)
        aggregator = _fill_aggregator(decisions, actions, groups=None)

        history = SimulationHistory()
        for step in range(num_steps):
            history.record_step(step, {}, decisions[step], actions[step], {})
        rates = history.recompute_running_default_rates()
        np.testing.assert_array_equal(
            aggregator.rate_min_series(), rates.min(axis=1)
        )
        np.testing.assert_array_equal(
            aggregator.rate_max_series(), rates.max(axis=1)
        )
        np.testing.assert_allclose(
            aggregator.rate_sum_series(), rates.sum(axis=1), rtol=1e-12, atol=1e-12
        )


class TestShardMerge:
    @given(stream_shapes, seeds)
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_concatenated_stream(self, shape, seed):
        num_steps, num_users = shape
        total_users = 2 * num_users + 1  # deliberately uneven shards
        decisions, actions = _random_stream(num_steps, total_users, seed)
        groups = _random_partition(total_users, seed + 4)
        split = num_users

        def restrict(indices, lower, upper):
            shard = indices[(indices >= lower) & (indices < upper)]
            return shard - lower

        groups_a = {key: restrict(idx, 0, split) for key, idx in groups.items()}
        groups_b = {
            key: restrict(idx, split, total_users) for key, idx in groups.items()
        }
        shard_a = _fill_aggregator(
            decisions[:, :split], actions[:, :split], groups_a
        )
        shard_b = _fill_aggregator(
            decisions[:, split:], actions[:, split:], groups_b
        )
        merged = shard_a.merge(shard_b)
        reference = _fill_aggregator(decisions, actions, groups)

        assert merged.num_users == reference.num_users
        assert merged.num_steps == reference.num_steps
        assert merged.group_sizes == reference.group_sizes
        for key in groups:
            np.testing.assert_array_equal(
                np.sort(merged.group_indices()[key]), reference.group_indices()[key]
            )
        # Integer-valued cumulative state merges exactly.
        np.testing.assert_array_equal(
            merged.export_state()["offers_cum"], reference.export_state()["offers_cum"]
        )
        np.testing.assert_array_equal(
            merged.export_state()["repayments_cum"],
            reference.export_state()["repayments_cum"],
        )
        np.testing.assert_array_equal(
            merged.rate_min_series(), reference.rate_min_series()
        )
        np.testing.assert_array_equal(
            merged.rate_max_series(), reference.rate_max_series()
        )
        # 0/1 decision sums are exact in float64, so approvals merge exactly.
        np.testing.assert_array_equal(
            merged.approval_rate_series(), reference.approval_rate_series()
        )
        np.testing.assert_array_equal(
            merged.portfolio_rate_series(), reference.portfolio_rate_series()
        )
        # Group rate sums are sums of quotients: merged as sum_a + sum_b,
        # equal to the single-stream sequential fold up to reassociation.
        merged_rates = merged.group_default_rate_series()
        reference_rates = reference.group_default_rate_series()
        for key in groups:
            np.testing.assert_allclose(
                merged_rates[key], reference_rates[key], rtol=1e-12, atol=1e-12
            )

    @given(
        st.integers(min_value=1, max_value=2),
        st.integers(min_value=1, max_value=20),
        seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_is_exact_for_dyadic_action_averages(
        self, num_steps, num_users, seed
    ):
        """With dyadic action values and power-of-two Cesàro divisors every
        intermediate float is exact, so the merged group averages are
        bit-identical to the concatenated-stream aggregation (no
        reassociation error exists).  Longer streams divide by non-powers
        of two and fall back to the tolerance-based property above."""
        rng = np.random.default_rng(seed)
        total_users = 2 * num_users
        decisions = np.ones((num_steps, total_users))
        # Multiples of 1/8 with small magnitude: exactly representable, and
        # closed under the (bounded) additions the aggregator performs.
        actions = rng.integers(0, 9, size=(num_steps, total_users)) / 8.0
        groups = _random_partition(total_users, seed + 5)

        def restrict(indices, lower, upper):
            shard = indices[(indices >= lower) & (indices < upper)]
            return shard - lower

        groups_a = {key: restrict(idx, 0, num_users) for key, idx in groups.items()}
        groups_b = {
            key: restrict(idx, num_users, total_users) for key, idx in groups.items()
        }
        shard_a = _fill_aggregator(
            decisions[:, :num_users], actions[:, :num_users], groups_a
        )
        shard_b = _fill_aggregator(
            decisions[:, num_users:], actions[:, num_users:], groups_b
        )
        merged = shard_a.merge(shard_b)
        reference = _fill_aggregator(decisions, actions, groups)
        merged_series = merged.group_action_average_series()
        reference_series = reference.group_action_average_series()
        for key in groups:
            np.testing.assert_array_equal(merged_series[key], reference_series[key])


class TestSequentialSum:
    @given(st.integers(min_value=0, max_value=200), seeds)
    @settings(max_examples=60, deadline=None)
    def test_matches_a_python_left_fold(self, size, seed):
        values = np.random.default_rng(seed).random(size)
        total = 0.0
        for value in values.tolist():
            total += value
        assert sequential_sum(values) == total

    @given(
        st.tuples(
            st.integers(min_value=2, max_value=25), st.integers(min_value=1, max_value=40)
        ),
        seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_the_fancy_indexed_group_reduction(self, shape, seed):
        """The exact order numpy uses in ``series[:, idx].mean(axis=1)``.

        Two or more steps make the fancy-indexed selection non-contiguous,
        which is what forces numpy onto the sequential accumulation that
        ``sequential_sum`` reproduces (a single-step selection is contiguous
        and takes the SIMD pairwise path instead — the documented
        one-step-history caveat of the streaming module).
        """
        num_steps, num_users = shape
        series = np.random.default_rng(seed).random((num_steps, num_users))
        indices = np.flatnonzero(
            np.random.default_rng(seed + 1).integers(0, 2, size=num_users)
        )
        if indices.size == 0:
            return
        reference = series[:, indices].mean(axis=1)
        streamed = np.array(
            [sequential_sum(series[k][indices]) / indices.size for k in range(num_steps)]
        )
        np.testing.assert_array_equal(streamed, reference)
