"""Hypothesis properties of checkpoint/resume bit-identity.

The fault-tolerance invariant is absolute: a trial interrupted at *any*
step and resumed from *any* checkpoint cadence replays the uninterrupted
trajectory byte for byte, in every recording mode and retraining mode,
whatever the shard count.  The random streams are stateless per
``(trial, shard, step)``, so the property is structural, not statistical —
hypothesis hunts the boundary cases (interrupt right at a checkpoint
boundary, cadence longer than the run, cut at the final step).

The codec property closes the loop at the byte level: any picklable
payload survives serialize → deserialize, and any torn prefix of the
serialized bytes is *rejected*, never misread.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import (
    CheckpointError,
    deserialize_payload,
    serialize_payload,
)
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import run_trial
from repro.testing.faults import (
    KILL_EXIT_CODE,
    FaultInjected,
    FaultSpec,
    clear_plan,
    install_plan,
    plan_environment,
)

#: 30 users, 2002-2012: eleven steps, two refit years — enough structure
#: to exercise retraining across a resume, small enough for hypothesis.
NUM_STEPS = 11


def _config(seed: int) -> CaseStudyConfig:
    return CaseStudyConfig(num_users=30, num_trials=1, seed=seed, end_year=2012)


#: Uninterrupted goldens, one per (seed, history_mode, retrain_mode) —
#: computed lazily so each hypothesis example pays for one resumed run,
#: not two full ones.
_GOLDENS: dict = {}


def _golden(seed: int, history_mode: str, retrain_mode: str):
    key = (seed, history_mode, retrain_mode)
    if key not in _GOLDENS:
        clear_plan()
        _GOLDENS[key] = run_trial(
            _config(seed),
            trial_index=0,
            history_mode=history_mode,
            retrain_mode=retrain_mode,
        )
    return _GOLDENS[key]


def _assert_same_trajectory(golden, resumed, history_mode: str) -> None:
    for race, series in golden.group_default_rates.items():
        np.testing.assert_array_equal(series, resumed.group_default_rates[race])
    if history_mode == "full":
        np.testing.assert_array_equal(
            golden.history.decisions_matrix(), resumed.history.decisions_matrix()
        )
        np.testing.assert_array_equal(
            golden.history.actions_matrix(), resumed.history.actions_matrix()
        )
        np.testing.assert_array_equal(
            golden.user_default_rates, resumed.user_default_rates
        )


class TestResumeBitIdentity:
    @given(
        seed=st.integers(min_value=0, max_value=3),
        history_mode=st.sampled_from(["full", "aggregate"]),
        retrain_mode=st.sampled_from(["exact", "compressed"]),
        num_shards=st.sampled_from([1, 2, 4]),
        cut=st.integers(min_value=1, max_value=NUM_STEPS - 1),
        every=st.integers(min_value=1, max_value=NUM_STEPS + 2),
    )
    @settings(max_examples=40, deadline=None)
    def test_interrupt_anywhere_resume_bit_identically(
        self, seed, history_mode, retrain_mode, num_shards, cut, every
    ):
        golden = _golden(seed, history_mode, retrain_mode)
        clear_plan()
        with tempfile.TemporaryDirectory() as snapshots:
            install_plan([FaultSpec(site="loop_step", kind="raise", step=cut)])
            try:
                with pytest.raises(FaultInjected):
                    run_trial(
                        _config(seed),
                        trial_index=0,
                        history_mode=history_mode,
                        retrain_mode=retrain_mode,
                        num_shards=num_shards,
                        checkpoint_dir=snapshots,
                        checkpoint_every=every,
                    )
                resumed = run_trial(
                    _config(seed),
                    trial_index=0,
                    history_mode=history_mode,
                    retrain_mode=retrain_mode,
                    num_shards=num_shards,
                    checkpoint_dir=snapshots,
                    checkpoint_every=every,
                    resume=True,
                )
            finally:
                clear_plan()
        _assert_same_trajectory(golden, resumed, history_mode)

    @given(cut=st.integers(min_value=1, max_value=NUM_STEPS - 1))
    @settings(max_examples=5, deadline=None)
    def test_process_kill_at_random_step_then_resume(self, cut):
        """A hard ``os._exit`` kill (not an exception) at a random step.

        The victim runs in a child interpreter so the kill is real; the
        parent then resumes from whatever snapshots the victim managed to
        land, and must reproduce the uninterrupted golden.
        """
        golden = _golden(0, "full", "exact")
        clear_plan()
        with tempfile.TemporaryDirectory() as snapshots:
            script = (
                "import sys; sys.path.insert(0, sys.argv[1])\n"
                "from repro.experiments.config import CaseStudyConfig\n"
                "from repro.experiments.runner import run_trial\n"
                "run_trial(\n"
                "    CaseStudyConfig(num_users=30, num_trials=1, seed=0, end_year=2012),\n"
                "    trial_index=0,\n"
                "    checkpoint_dir=sys.argv[2],\n"
                "    checkpoint_every=2,\n"
                ")\n"
            )
            environment = dict(os.environ)
            environment.update(
                plan_environment(
                    [FaultSpec(site="loop_step", kind="kill", step=cut)],
                    state_dir=snapshots,
                )
            )
            source_root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
            victim = subprocess.run(
                [sys.executable, "-c", script, source_root, snapshots],
                env=environment,
                capture_output=True,
                timeout=300,
            )
            assert victim.returncode == KILL_EXIT_CODE, victim.stderr.decode()
            resumed = run_trial(
                _config(0),
                trial_index=0,
                checkpoint_dir=snapshots,
                checkpoint_every=2,
                resume=True,
            )
        _assert_same_trajectory(golden, resumed, "full")


class TestCodecProperties:
    @given(
        payload=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(
                st.integers(),
                st.floats(allow_nan=False),
                st.binary(max_size=64),
                st.lists(st.integers(), max_size=8),
            ),
            max_size=8,
        ),
        step=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_any_payload(self, payload, step):
        payload = dict(payload, step=step)
        assert deserialize_payload(serialize_payload(payload)) == payload

    @given(
        cut=st.integers(min_value=0, max_value=10**6),
        step=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_torn_prefix_is_rejected(self, cut, step):
        data = serialize_payload({"step": step, "body": list(range(64))})
        cut = cut % len(data)  # every proper prefix, whatever hypothesis drew
        with pytest.raises(CheckpointError):
            deserialize_payload(data[:cut])
