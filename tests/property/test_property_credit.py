"""Property-based tests on the credit substrate's invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.credit.borrower import affordability_state
from repro.credit.default_rates import DefaultRateTracker
from repro.credit.mortgage import MortgageTerms
from repro.credit.repayment import GaussianRepaymentModel

incomes_strategy = st.lists(st.floats(0.0, 500.0), min_size=1, max_size=30)


class TestAffordabilityProperties:
    @given(incomes_strategy, st.floats(0.5, 10.0), st.floats(0.0, 0.2))
    @settings(max_examples=60, deadline=None)
    def test_state_never_exceeds_one(self, incomes, multiple, rate):
        terms = MortgageTerms(income_multiple=multiple, annual_rate=rate, living_cost=5.0)
        states = affordability_state(incomes, terms)
        assert np.all(states < 1.0)

    @given(st.floats(0.1, 500.0), st.floats(0.1, 500.0))
    @settings(max_examples=60, deadline=None)
    def test_state_is_monotone_in_income(self, income_a, income_b):
        terms = MortgageTerms()
        low, high = sorted([income_a, income_b])
        states = affordability_state([low, high], terms)
        assert states[1] >= states[0] - 1e-12

    @given(st.floats(0.1, 500.0), st.floats(0.0, 30.0))
    @settings(max_examples=60, deadline=None)
    def test_higher_living_cost_never_helps(self, income, extra_cost):
        cheap = MortgageTerms(living_cost=5.0)
        expensive = MortgageTerms(living_cost=5.0 + extra_cost)
        assert (
            affordability_state(income, expensive)[0]
            <= affordability_state(income, cheap)[0] + 1e-12
        )


class TestRepaymentProperties:
    @given(st.lists(st.floats(-1.0, 1.0), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_probabilities_are_in_the_unit_interval(self, states):
        model = GaussianRepaymentModel()
        probabilities = model.repayment_probability(states)
        assert np.all((probabilities >= 0.0) & (probabilities <= 1.0))

    @given(
        st.lists(st.floats(-1.0, 1.0), min_size=1, max_size=40),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_sampled_repayments_respect_the_offer_mask(self, states, seed):
        model = GaussianRepaymentModel()
        rng = np.random.default_rng(seed)
        decisions = rng.integers(0, 2, size=len(states))
        repayments = model.sample_repayments(states, decisions, rng)
        assert np.all(repayments[decisions == 0] == 0)
        assert set(np.unique(repayments)).issubset({0, 1})


class TestDefaultRateTrackerProperties:
    @given(
        st.integers(min_value=1, max_value=15),
        st.integers(min_value=1, max_value=25),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_rates_always_lie_in_the_unit_interval(self, num_users, num_steps, seed):
        rng = np.random.default_rng(seed)
        tracker = DefaultRateTracker(num_users)
        for _ in range(num_steps):
            decisions = rng.integers(0, 2, size=num_users)
            repayments = np.where(
                decisions == 1, rng.integers(0, 2, size=num_users), 0
            )
            tracker.record(decisions, repayments)
        rates = tracker.user_rates()
        assert np.all((rates >= 0.0) & (rates <= 1.0))
        assert 0.0 <= tracker.portfolio_rate() <= 1.0

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_rates_match_the_direct_formula(self, num_steps, seed):
        rng = np.random.default_rng(seed)
        tracker = DefaultRateTracker(1)
        offers = 0
        repaid = 0
        for _ in range(num_steps):
            decision = int(rng.integers(0, 2))
            repayment = int(rng.integers(0, 2)) if decision else 0
            tracker.record([decision], [repayment])
            offers += decision
            repaid += repayment
        expected = 0.0 if offers == 0 else 1.0 - repaid / offers
        assert tracker.user_rates()[0] == pytest.approx(expected)

    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_all_repaid_means_zero_rate_everywhere(self, num_users, seed):
        tracker = DefaultRateTracker(num_users)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            decisions = rng.integers(0, 2, size=num_users)
            tracker.record(decisions, decisions)  # everyone offered repays
        assert np.all(tracker.user_rates() == 0.0)
