"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.census import default_income_table
from repro.data.synthetic import PopulationSpec, generate_population
from repro.experiments.config import CaseStudyConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_config() -> CaseStudyConfig:
    """A scaled-down case-study configuration that runs in well under a second."""
    return CaseStudyConfig(num_users=80, num_trials=2, seed=99)


@pytest.fixture
def tiny_config() -> CaseStudyConfig:
    """An even smaller configuration for tests that run many simulations."""
    return CaseStudyConfig(num_users=40, num_trials=1, seed=7)


@pytest.fixture(scope="session")
def income_table():
    """The embedded synthetic income table (deterministic, safe to share)."""
    return default_income_table()


@pytest.fixture
def small_population(rng):
    """A small synthetic population with the paper's race mix."""
    return generate_population(PopulationSpec(size=60), rng)
